// Package sim provides the discrete-event simulation kernel used by every
// hardware and protocol model in this repository.
//
// The kernel is deliberately small: a monotonically increasing simulated
// clock, a binary-heap event queue with deterministic tie-breaking, and a
// handful of synchronization primitives (resources, queues, signals) built on
// top of it.  All simulated time is carried as sim.Time, an int64 count of
// simulated nanoseconds, so one simulated second is 1e9 and a 155.52 Mb/s
// cell time (2.726 µs) is 2726 ticks with sub-nanosecond residue handled by
// the units package.
//
// The kernel is single-goroutine: models schedule callbacks rather than
// blocking.  This keeps runs deterministic and fast (no channel hand-offs on
// the per-cell hot path) and mirrors how the hardware being modelled is
// clocked.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// run. Negative values are invalid except for the sentinel Never.
type Time int64

// Never is a sentinel Time that compares after every reachable time.
const Never Time = math.MaxInt64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration's constants but in simulated
// nanoseconds.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time in an engineering-friendly unit.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. The zero Event is inert.
type Event struct {
	at    Time
	seq   uint64 // insertion order; breaks ties deterministically
	index int    // heap index, -1 when not queued
	fn    func()
}

// At reports the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is currently in the queue.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool

	// Stats
	dispatched uint64
}

// NewKernel returns a kernel with the clock at zero and an empty queue.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Dispatched reports how many events have been executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Pending reports how many events are queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// a model that does so is broken, and silently clamping would hide the bug.
func (k *Kernel) At(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	e := &Event{at: at, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", int64(d)))
	}
	return k.At(k.now+d, fn)
}

// Cancel removes a previously scheduled event. Cancelling a nil, already-run
// or already-cancelled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&k.queue, e.index)
	e.index = -1
}

// Reschedule moves a pending event to a new absolute time, or schedules it
// afresh if it already fired.
func (k *Kernel) Reschedule(e *Event, at Time) {
	if at < k.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, k.now))
	}
	if e.index >= 0 {
		e.at = at
		e.seq = k.seq
		k.seq++
		heap.Fix(&k.queue, e.index)
		return
	}
	e.at = at
	e.seq = k.seq
	k.seq++
	heap.Push(&k.queue, e)
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, if any, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	if e.at < k.now {
		panic("sim: event queue corrupted (time went backwards)")
	}
	k.now = e.at
	k.dispatched++
	e.fn()
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulated time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to the deadline (if the deadline is later than the last event). Events
// scheduled beyond the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for !k.stopped {
		if len(k.queue) == 0 || k.queue[0].at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// RunFor advances the simulation by d nanoseconds of simulated time.
func (k *Kernel) RunFor(d Duration) Time { return k.RunUntil(k.now + d) }
