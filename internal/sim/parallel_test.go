package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// pingNode is a toy protocol node: on receiving a token it logs the arrival
// and bounces it back over its outgoing "link" after a fixed think time.
// The link is abstracted as a send function so the same node code runs on a
// serial kernel (plain Post) and across a partition boundary (Mailbox).
type pingNode struct {
	k     *Kernel
	name  string
	rng   *Rand
	delay Duration // link propagation delay
	think Duration
	send  func(at, pt Time, afn func(any), arg any)
	peer  *pingNode
	log   []string
	left  int
}

func (n *pingNode) recv(arg any) {
	tok := arg.(*int)
	n.log = append(n.log, fmt.Sprintf("%s t=%d tok=%d rng=%d", n.name, n.k.Now(), *tok, n.rng.Intn(1000)))
	if n.left == 0 {
		return
	}
	n.left--
	*tok++
	n.k.PostAfter(n.think, func() {
		n.send(n.k.Now()+n.delay, n.k.Now(), n.peer.recv, tok)
	})
}

// buildPair wires two ping nodes over a duplex link with the given delay,
// using the given conduits, and injects the first token toward B.
func buildPair(ka, kb *Kernel, delay Duration,
	sendAB, sendBA func(at, pt Time, afn func(any), arg any)) (*pingNode, *pingNode) {
	a := &pingNode{k: ka, name: "a", rng: NewRand(7), delay: delay, think: 300, send: sendAB, left: 20}
	b := &pingNode{k: kb, name: "b", rng: NewRand(9), delay: delay, think: 500, send: sendBA, left: 20}
	a.peer, b.peer = b, a
	tok := new(int)
	ka.Post(100, func() {
		a.send(ka.Now()+a.delay, ka.Now(), b.recv, tok)
	})
	return a, b
}

// TestGroupGoldenPingPong pins a two-partition Group run byte-identical to
// the serial kernel: same per-node event logs, same RNG draws, same final
// clock.
func TestGroupGoldenPingPong(t *testing.T) {
	const delay = 2000

	// Serial reference: both nodes on one kernel, links are plain posts
	// (pt/lane are implicit).
	ks := NewKernel()
	post := func(at, pt Time, afn func(any), arg any) { ks.Post(at, func() { afn(arg) }) }
	sa, sb := buildPair(ks, ks, delay, post, post)
	serialEnd := ks.Run()

	// Parallel: one kernel per node, a mailbox per direction.
	ka, kb := NewKernel(), NewKernel()
	g := NewGroup([]*Kernel{ka, kb})
	mab := g.Mailbox(ka, kb, delay)
	mba := g.Mailbox(kb, ka, delay)
	pa, pb := buildPair(ka, kb, delay, mab.Post, mba.Post)
	parEnd := g.Run()
	g.Close()

	if serialEnd != parEnd {
		t.Errorf("final time: serial %v parallel %v", serialEnd, parEnd)
	}
	if !reflect.DeepEqual(sa.log, pa.log) {
		t.Errorf("node a diverged:\nserial   %v\nparallel %v", sa.log, pa.log)
	}
	if !reflect.DeepEqual(sb.log, pb.log) {
		t.Errorf("node b diverged:\nserial   %v\nparallel %v", sb.log, pb.log)
	}
	if len(pa.log) == 0 || len(pb.log) == 0 {
		t.Fatal("no traffic simulated")
	}
	if g.Window() != delay {
		t.Errorf("window = %v, want link delay %v", g.Window(), delay)
	}
}

// TestGroupRunUntil pins the serial RunUntil contract on a Group: events at
// the deadline run, later events stay queued, and every kernel's clock ends
// exactly at the deadline.
func TestGroupRunUntil(t *testing.T) {
	ka, kb := NewKernel(), NewKernel()
	g := NewGroup([]*Kernel{ka, kb})
	g.Mailbox(ka, kb, 1000)
	defer g.Close()

	// One log per kernel: each is appended only from its own shard
	// goroutine, so the run is race-free by construction.
	var firedA, firedB []Time
	ka.Post(5000, func() { firedA = append(firedA, ka.Now()) })
	kb.Post(5000, func() { firedB = append(firedB, kb.Now()) })
	kb.Post(5001, func() { firedB = append(firedB, kb.Now()) })

	if got := g.RunUntil(5000); got != 5000 {
		t.Fatalf("RunUntil returned %v, want 5000", got)
	}
	if len(firedA)+len(firedB) != 2 {
		t.Fatalf("fired %d events by deadline, want 2 (got %v %v)", len(firedA)+len(firedB), firedA, firedB)
	}
	if ka.Now() != 5000 || kb.Now() != 5000 {
		t.Errorf("clocks at %v/%v, want 5000/5000", ka.Now(), kb.Now())
	}
	if g.RunUntil(6000); len(firedB) != 2 {
		t.Errorf("event beyond first deadline lost: fired %v", firedB)
	}
}

// TestGroupIdleJump pins that a long idle stretch costs one barrier, not
// one barrier per window: with a tiny lookahead and events 1 ms apart the
// run must still terminate quickly because each window opens at the next
// queued event.
func TestGroupIdleJump(t *testing.T) {
	ka, kb := NewKernel(), NewKernel()
	g := NewGroup([]*Kernel{ka, kb})
	g.Mailbox(ka, kb, 10) // 10 ns lookahead
	defer g.Close()

	n := 0
	for i := Time(1); i <= 50; i++ {
		ka.Post(i*Millisecond, func() { n++ })
	}
	g.Run()
	if n != 50 {
		t.Fatalf("dispatched %d, want 50", n)
	}
}

// TestMailboxZeroLookaheadPanics: zero-delay links cannot cross partitions.
func TestMailboxZeroLookaheadPanics(t *testing.T) {
	g := NewGroup([]*Kernel{NewKernel(), NewKernel()})
	defer func() {
		if recover() == nil {
			t.Fatal("Mailbox(lookahead=0) did not panic")
		}
	}()
	g.Mailbox(g.Kernels()[0], g.Kernels()[1], 0)
}

// TestPostBoundaryPastPanics: a boundary event landing in the receiving
// kernel's past is a lookahead violation and must fail loudly.
func TestPostBoundaryPastPanics(t *testing.T) {
	k := NewKernel()
	k.Post(100, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("PostBoundary in the past did not panic")
		}
	}()
	k.PostBoundary(50, 0, 1, 0, func(any) {}, nil)
}

// TestBoundaryKeyOrdering pins the dispatch-key tie-break: at equal arrival
// times, earlier post time wins; at equal post times, the lower lane wins;
// within one lane, the sender's sequence order wins.
func TestBoundaryKeyOrdering(t *testing.T) {
	k := NewKernel()
	var order []string
	note := func(s string) func(any) { return func(any) { order = append(order, s) } }

	k.PostBoundary(1000, 500, 2, 0, note("pt500-lane2"), nil)
	k.PostBoundary(1000, 400, 3, 7, note("pt400-lane3"), nil)
	k.PostBoundary(1000, 500, 1, 9, note("pt500-lane1-seq9"), nil)
	k.PostBoundary(1000, 500, 1, 3, note("pt500-lane1-seq3"), nil)
	k.Run()

	want := []string{"pt400-lane3", "pt500-lane1-seq3", "pt500-lane1-seq9", "pt500-lane2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// TestSerialKeyUnchanged pins that on a serial kernel the extended key
// collapses to (at, seq): interleaved At/Post calls for the same instant
// dispatch in scheduling order, exactly as before the pt/lane fields.
func TestSerialKeyUnchanged(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		if i%2 == 0 {
			k.Post(1000, func() { order = append(order, i) })
		} else {
			k.At(1000, func() { order = append(order, i) })
		}
	}
	k.Run()
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("same-instant dispatch order %v, want schedule order", order)
	}
}

// TestRandSplitStreams enforces the partition-independence contract from
// the Rand doc comment: streams derived via Split draw identical sequences
// regardless of how other streams' draws interleave with theirs — so a
// node's RNG sequence is the same whether its partition runs alone (serial
// projection) or concurrently with others.
func TestRandSplitStreams(t *testing.T) {
	draw := func(interleave bool) []uint64 {
		root := NewRand(42)
		a, b := root.Split(), root.Split()
		var seq []uint64
		for i := 0; i < 256; i++ {
			if interleave {
				for j := 0; j < i%5; j++ {
					b.Uint64() // another partition draining its own stream
				}
			}
			seq = append(seq, a.Uint64())
		}
		return seq
	}
	if !reflect.DeepEqual(draw(false), draw(true)) {
		t.Fatal("Split streams are not independent: interleaved draws perturbed the sequence")
	}

	// The footgun the rule prevents: one SHARED stream drawn by two nodes
	// is order-sensitive, hence not safe across partitions.
	shared := NewRand(42)
	solo := NewRand(42)
	shared.Uint64() // "other node" draw
	if shared.Uint64() == solo.Uint64() {
		t.Fatal("shared stream unexpectedly order-insensitive; doc rationale is stale")
	}
}
