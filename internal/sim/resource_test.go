package sim

import "testing"

func TestResourceServesImmediatelyWhenIdle(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	var done Time = -1
	finish := r.Use(100, func() { done = k.Now() })
	if finish != 100 {
		t.Fatalf("predicted finish %v, want 100", finish)
	}
	k.Run()
	if done != 100 {
		t.Fatalf("completed at %v, want 100", done)
	}
}

func TestResourceQueuesFIFO(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	var order []int
	r.Use(10, func() { order = append(order, 1) })
	r.Use(10, func() { order = append(order, 2) })
	r.Use(10, func() { order = append(order, 3) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("completion order %v, want [1 2 3]", order)
	}
	if k.Now() != 30 {
		t.Fatalf("finished at %v, want 30 (serialized)", k.Now())
	}
}

func TestResourcePredictedFinishWithQueue(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus")
	r.Use(10, nil)
	finish := r.Use(20, nil)
	if finish != 30 {
		t.Fatalf("predicted finish %v, want 30", finish)
	}
	finish = r.Use(5, nil)
	if finish != 35 {
		t.Fatalf("predicted finish %v, want 35", finish)
	}
}

func TestResourceArrivalDuringService(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	var completions []Time
	r.Use(100, func() { completions = append(completions, k.Now()) })
	k.At(50, func() {
		r.Use(30, func() { completions = append(completions, k.Now()) })
	})
	k.Run()
	if len(completions) != 2 || completions[0] != 100 || completions[1] != 130 {
		t.Fatalf("completions %v, want [100 130]", completions)
	}
}

func TestResourceBusyFlag(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	if r.Busy() {
		t.Fatal("idle resource reports busy")
	}
	r.Use(10, nil)
	if !r.Busy() {
		t.Fatal("serving resource reports idle")
	}
	k.Run()
	if r.Busy() {
		t.Fatal("drained resource reports busy")
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	r.Use(100, nil)
	k.Run()
	k.RunUntil(200) // idle 100..200
	if u := r.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestResourceStats(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	r.Use(10, nil)
	r.Use(10, nil) // waits 10
	r.Use(10, nil) // waits 20
	k.Run()
	served, busy, wait, maxQ := r.Stats()
	if served != 3 {
		t.Errorf("served = %d, want 3", served)
	}
	if busy != 30 {
		t.Errorf("busy = %v, want 30", busy)
	}
	if wait != 30 {
		t.Errorf("wait = %v, want 30 (10+20)", wait)
	}
	if maxQ != 2 {
		t.Errorf("maxQueued = %d, want 2", maxQ)
	}
}

func TestResourceNegativeDurationPanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	r.Use(-1, nil)
}

func TestResourceZeroDuration(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	ran := false
	r.Use(0, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("zero-duration use never completed")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestRandSplitIndependence(t *testing.T) {
	a := NewRand(1)
	c := a.Split()
	if a.Uint64() == c.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestRandBernoulliExtremes(t *testing.T) {
	r := NewRand(7)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
}

func TestRandBernoulliMean(t *testing.T) {
	r := NewRand(9)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	mean := float64(hits) / float64(n)
	if mean < 0.28 || mean > 0.32 {
		t.Fatalf("Bernoulli(0.3) empirical mean %v", mean)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / float64(n)
	if mean < 95 || mean > 105 {
		t.Fatalf("Exp(100) empirical mean %v", mean)
	}
}

func TestRandGeometricExtremes(t *testing.T) {
	r := NewRand(13)
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	if g := r.Geometric(0); g != ^uint64(0) {
		t.Fatalf("Geometric(0) = %d, want MaxUint64", g)
	}
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(17)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(0.1))
	}
	mean := sum / float64(n) // expect (1-p)/p = 9
	if mean < 8.5 || mean > 9.5 {
		t.Fatalf("Geometric(0.1) empirical mean %v, want ~9", mean)
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}
