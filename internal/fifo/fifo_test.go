package fifo

import (
	"testing"
	"testing/quick"
)

func TestPushPopOrder(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 5; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d dropped", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestOverflowDrops(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Push(2)
	if r.Push(3) {
		t.Fatal("push into full FIFO accepted")
	}
	s := r.Stats()
	if s.Drops != 1 || s.Pushes != 2 {
		t.Fatalf("stats %+v", s)
	}
	// Contents unharmed.
	if v, _ := r.Pop(); v != 1 {
		t.Fatalf("head = %d, want 1", v)
	}
}

func TestWraparound(t *testing.T) {
	r := NewRing[int](4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(round*10 + i) {
				t.Fatalf("round %d push %d dropped", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = %d,%v", round, v, ok)
			}
		}
	}
}

func TestPeek(t *testing.T) {
	r := NewRing[string](2)
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	r.Push("a")
	r.Push("b")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q,%v", v, ok)
	}
	if r.Len() != 2 {
		t.Fatal("peek consumed an item")
	}
}

func TestFullEmptyFlags(t *testing.T) {
	r := NewRing[int](1)
	if !r.Empty() || r.Full() {
		t.Fatal("fresh FIFO flags wrong")
	}
	r.Push(1)
	if r.Empty() || !r.Full() {
		t.Fatal("single-slot full flags wrong")
	}
	r.Pop()
	if !r.Empty() {
		t.Fatal("drained FIFO not empty")
	}
}

func TestMaxAndMeanDepth(t *testing.T) {
	r := NewRing[int](8)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	r.Pop()
	r.Push(4)
	s := r.Stats()
	if s.MaxDepth != 3 {
		t.Fatalf("MaxDepth = %d, want 3", s.MaxDepth)
	}
	// Depth observed at the 4 pushes: 0,1,2,2 -> mean 1.25.
	if s.MeanDepth != 1.25 {
		t.Fatalf("MeanDepth = %v, want 1.25", s.MeanDepth)
	}
}

func TestReset(t *testing.T) {
	r := NewRing[int](4)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if !r.Empty() {
		t.Fatal("reset did not empty")
	}
	s := r.Stats()
	if s.Pushes != 0 || s.Drops != 0 || s.MaxDepth != 0 {
		t.Fatalf("reset left counters: %+v", s)
	}
}

func TestZeroDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}

func TestPopReleasesReferences(t *testing.T) {
	r := NewRing[*int](2)
	x := new(int)
	r.Push(x)
	r.Pop()
	// The slot must no longer hold the pointer (checked via Peek of a
	// fresh push cycle: slot reuse would be visible only via unsafe, so
	// instead verify the ring returns zero after Reset).
	r.Push(nil)
	v, ok := r.Pop()
	if !ok || v != nil {
		t.Fatal("ring corrupted after pointer cycling")
	}
}

// Property: a ring never reorders, never loses accepted items, and never
// exceeds capacity. Model-check against a slice.
func TestPropertyMatchesSliceModel(t *testing.T) {
	f := func(ops []bool, depth uint8) bool {
		d := int(depth%16) + 1
		r := NewRing[int](d)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				accepted := r.Push(next)
				if accepted != (len(model) < d) {
					return false
				}
				if accepted {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := NewRing[int](64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(i)
		r.Pop()
	}
}
