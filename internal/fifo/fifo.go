// Package fifo models the hardware cell FIFOs that decouple the SONET
// framer's fixed cell clock from the protocol engines' variable per-cell
// processing time.
//
// Sizing these FIFOs is experiment E9: too shallow and a burst of
// back-to-back cells overflows while the receive engine is held off the bus
// by a host DMA; the paper's architecture places a FIFO on each side of each
// engine for exactly this reason.
package fifo

import (
	"fmt"

	"repro/internal/metrics"
)

// Ring is a bounded FIFO of fixed-size items (one ATM cell each).  It is a
// power-of-two ring buffer with drop-on-overflow semantics, which is what
// the hardware does: a full receive FIFO loses the incoming cell, it does
// not exert backpressure on the fiber.
type Ring[T any] struct {
	buf   []T
	head  int // next pop
	tail  int // next push
	count int

	// Accounting.
	pushes   uint64
	pops     uint64
	drops    uint64
	maxDepth int
	depthSum uint64 // for mean-depth over pushes

	// Registry instruments (nil until Instrument is called; nil-safe).
	mPushes    *metrics.Counter
	mPops      *metrics.Counter
	mDrops     *metrics.Counter
	mOccupancy *metrics.Gauge
}

// NewRing returns a FIFO holding at most depth items. depth must be > 0.
func NewRing[T any](depth int) *Ring[T] {
	if depth <= 0 {
		panic(fmt.Sprintf("fifo: invalid depth %d", depth))
	}
	return &Ring[T]{buf: make([]T, depth)}
}

// Instrument registers this FIFO's telemetry under the given name prefix:
// "<prefix>.pushes", "<prefix>.pops", "<prefix>.drops" counters and a
// "<prefix>.occupancy" gauge whose high watermark is the depth the FIFO
// actually needed. A nil registry leaves the FIFO un-instrumented (the
// nil instruments are no-ops on the hot path).
func (r *Ring[T]) Instrument(reg *metrics.Registry, prefix string) {
	r.mPushes = reg.Counter(prefix + ".pushes")
	r.mPops = reg.Counter(prefix + ".pops")
	r.mDrops = reg.Counter(prefix + ".drops")
	r.mOccupancy = reg.Gauge(prefix + ".occupancy")
}

// Cap returns the FIFO's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the current occupancy.
func (r *Ring[T]) Len() int { return r.count }

// Empty reports whether the FIFO holds nothing.
func (r *Ring[T]) Empty() bool { return r.count == 0 }

// Full reports whether a push would drop.
func (r *Ring[T]) Full() bool { return r.count == len(r.buf) }

// Free returns the remaining headroom in items — what an admission or
// discard policy (EPD thresholds, CAC buffer budgets) compares against.
func (r *Ring[T]) Free() int { return len(r.buf) - r.count }

// Push appends v. If the FIFO is full the item is dropped and Push reports
// false — hardware overflow semantics.
func (r *Ring[T]) Push(v T) bool {
	r.depthSum += uint64(r.count)
	if r.count == len(r.buf) {
		r.drops++
		r.mDrops.Inc()
		return false
	}
	r.buf[r.tail] = v
	r.tail++
	if r.tail == len(r.buf) {
		r.tail = 0
	}
	r.count++
	r.pushes++
	r.mPushes.Inc()
	r.mOccupancy.Set(int64(r.count))
	if r.count > r.maxDepth {
		r.maxDepth = r.count
	}
	return true
}

// Pop removes and returns the oldest item. ok is false when empty.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.count == 0 {
		var zero T
		return zero, false
	}
	v = r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release references
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.count--
	r.pops++
	r.mPops.Inc()
	r.mOccupancy.Set(int64(r.count))
	return v, true
}

// Peek returns the oldest item without removing it.
func (r *Ring[T]) Peek() (v T, ok bool) {
	if r.count == 0 {
		var zero T
		return zero, false
	}
	return r.buf[r.head], true
}

// Stats reports cumulative counters.
type Stats struct {
	Pushes   uint64
	Pops     uint64
	Drops    uint64
	MaxDepth int
	// MeanDepth is the average occupancy observed at push attempts —
	// a cheap proxy for time-averaged depth under a steady cell clock.
	MeanDepth float64
}

// Stats returns the FIFO's counters.
func (r *Ring[T]) Stats() Stats {
	s := Stats{Pushes: r.pushes, Pops: r.pops, Drops: r.drops, MaxDepth: r.maxDepth}
	attempts := r.pushes + r.drops
	if attempts > 0 {
		s.MeanDepth = float64(r.depthSum) / float64(attempts)
	}
	return s
}

// Reset empties the FIFO and clears counters.
func (r *Ring[T]) Reset() {
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.head, r.tail, r.count = 0, 0, 0
	r.pushes, r.pops, r.drops, r.maxDepth, r.depthSum = 0, 0, 0, 0, 0
}
