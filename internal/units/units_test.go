package units

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCellTimeSTS3cLine(t *testing.T) {
	// 53 bytes at 155.52 Mb/s = 424 bits / 155.52e6 = 2726.3 ns.
	got := CellTime(STS3cLine)
	if got != 2726 {
		t.Fatalf("CellTime(STS3cLine) = %v ns, want 2726", int64(got))
	}
}

func TestCellTimeSTS3cPayload(t *testing.T) {
	// 424 bits / 149.76e6 = 2831.2 ns.
	got := CellTime(STS3cPayload)
	if got != 2831 {
		t.Fatalf("CellTime(STS3cPayload) = %v ns, want 2831", int64(got))
	}
}

func TestCellTimeSTS12c(t *testing.T) {
	// 424 bits / 622.08e6 = 681.6 ns.
	if got := CellTime(STS12cLine); got != 682 {
		t.Fatalf("CellTime(STS12cLine) = %v ns, want 682", int64(got))
	}
	// 424 / 599.04e6 = 707.8 ns.
	if got := CellTime(STS12cPayload); got != 708 {
		t.Fatalf("CellTime(STS12cPayload) = %v ns, want 708", int64(got))
	}
}

func TestTimePerBytesZero(t *testing.T) {
	if got := TimePerBytes(STS3cLine, 0); got != 0 {
		t.Fatalf("TimePerBytes(_, 0) = %v, want 0", got)
	}
}

func TestTimePerBytesLinear(t *testing.T) {
	one := TimePerBytes(Mbps, 1)  // 8 bits at 1e6 b/s = 8000 ns
	ten := TimePerBytes(Mbps, 10) // 80000 ns
	if one != 8000 {
		t.Fatalf("1 byte at 1Mb/s = %v ns, want 8000", int64(one))
	}
	if ten != 80000 {
		t.Fatalf("10 bytes at 1Mb/s = %v ns, want 80000", int64(ten))
	}
}

func TestTimePerBytesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero rate":      func() { TimePerBytes(0, 1) },
		"negative rate":  func() { TimePerBytes(-1, 1) },
		"negative bytes": func() { TimePerBytes(Mbps, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCellRate(t *testing.T) {
	// STS-3c payload: 149.76e6/424 = 353207.5 cells/s.
	got := CellRate(STS3cPayload)
	if got < 353207 || got > 353208 {
		t.Fatalf("CellRate(STS3cPayload) = %v, want ~353207.5", got)
	}
}

func TestCellsForPayload(t *testing.T) {
	cases := []struct {
		n, per, want int
	}{
		{0, 48, 0},
		{1, 48, 1},
		{48, 48, 1},
		{49, 48, 2},
		{9180, 48, 192}, // IP MTU over AAL5 SAR payload, before trailer
		{9180, 44, 209}, // same under AAL3/4
		{65535, 48, 1366},
		{-5, 48, 0},
	}
	for _, c := range cases {
		if got := CellsForPayload(c.n, c.per); got != c.want {
			t.Errorf("CellsForPayload(%d,%d) = %d, want %d", c.n, c.per, got, c.want)
		}
	}
}

func TestCellsForPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CellsForPayload with zero per-cell did not panic")
		}
	}()
	CellsForPayload(10, 0)
}

func TestEfficiency(t *testing.T) {
	// One full AAL5 SAR cell: 48/53.
	got := Efficiency(48, 1)
	want := 48.0 / 53.0
	if got != want {
		t.Fatalf("Efficiency(48,1) = %v, want %v", got, want)
	}
	if Efficiency(10, 0) != 0 {
		t.Fatal("Efficiency with zero cells should be 0")
	}
}

func TestThroughputBps(t *testing.T) {
	// 1e6 bytes over 1 simulated second = 8e6 b/s.
	got := ThroughputBps(1_000_000, sim.Second)
	if got != 8_000_000 {
		t.Fatalf("ThroughputBps = %v, want 8e6", got)
	}
	if ThroughputBps(100, 0) != 0 {
		t.Fatal("ThroughputBps with zero duration should be 0")
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		r    BitRate
		want string
	}{
		{STS3cLine, "155.52Mb/s"},
		{STS12cLine, "622.08Mb/s"},
		{2 * Gbps, "2.000Gb/s"},
		{1500, "1.5Kb/s"},
		{12, "12b/s"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.r), got, c.want)
		}
	}
}

// Property: TimePerBytes is monotone non-decreasing in n and additive within
// rounding (time(a+b) within 1ns of time(a)+time(b)).
func TestPropertyTimePerBytesMonotoneAdditive(t *testing.T) {
	f := func(a, b uint16) bool {
		ta := TimePerBytes(STS3cLine, int(a))
		tb := TimePerBytes(STS3cLine, int(b))
		tab := TimePerBytes(STS3cLine, int(a)+int(b))
		if tab < ta || tab < tb {
			return false
		}
		diff := tab - (ta + tb)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CellsForPayload(n) * perCell always covers n.
func TestPropertyCellsCoverPayload(t *testing.T) {
	f := func(n uint16, per uint8) bool {
		p := int(per%64) + 1
		c := CellsForPayload(int(n), p)
		return c*p >= int(n) && (c == 0 || (c-1)*p < int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
