// Package units provides the rate, size and cell-timing arithmetic shared by
// every model in the repository.
//
// The quantities that matter in an ATM host interface are awkward: a SONET
// STS-3c link runs at 155.52 Mb/s but only 149.76 Mb/s of that is payload
// once transport and path overhead are removed, and each 53-byte cell carries
// at most 48 bytes of adaptation-layer payload (44 under AAL3/4).  This
// package centralizes those constants so the experiments, the simulator and
// the documentation cannot drift apart.
package units

import (
	"fmt"

	"repro/internal/sim"
)

// BitRate is a line or payload rate in bits per second.
type BitRate int64

// Standard SONET line rates and their SPE (payload envelope) rates.  The SPE
// rate is what is available to carry ATM cells; the rest is SONET transport
// and path overhead.
const (
	Kbps BitRate = 1_000
	Mbps BitRate = 1_000_000
	Gbps BitRate = 1_000_000_000

	// STS3cLine is the OC-3c/STS-3c line rate used by the interface as
	// built; STS3cPayload is its synchronous payload envelope net of the
	// 9-byte path overhead column (260/270 of 9/10 of line = 149.76 Mb/s).
	STS3cLine    BitRate = 155_520_000
	STS3cPayload BitRate = 149_760_000

	// STS12cLine is the OC-12c target rate the architecture was designed
	// toward; STS12cPayload its payload envelope (599.04 Mb/s).
	STS12cLine    BitRate = 622_080_000
	STS12cPayload BitRate = 599_040_000
)

// String renders the rate in engineering units.
func (r BitRate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.3fGb/s", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMb/s", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.1fKb/s", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%db/s", int64(r))
	}
}

// ATM framing constants.
const (
	// CellSize is the full ATM cell: 5-byte header + 48-byte payload.
	CellSize = 53
	// CellHeaderSize is the ATM header including HEC.
	CellHeaderSize = 5
	// CellPayload is the cell payload available to the adaptation layer.
	CellPayload = 48
	// AAL34Payload is the per-cell SAR payload under AAL3/4, which spends
	// 2 bytes of SAR header and 2 bytes of SAR trailer inside the cell.
	AAL34Payload = 44
)

// TimePerBytes returns the simulated time to transmit n bytes at rate r,
// rounding half-up to the nearest nanosecond.  r must be positive.
func TimePerBytes(r BitRate, n int) sim.Duration {
	if r <= 0 {
		panic("units: non-positive rate")
	}
	if n < 0 {
		panic("units: negative byte count")
	}
	bits := int64(n) * 8
	// duration_ns = bits * 1e9 / rate, computed without overflow for any
	// realistic n (bits up to ~2^40 keeps bits*1e9 within int64 range only
	// for small n, so split the division).
	whole := bits / int64(r)
	rem := bits % int64(r)
	ns := whole*1_000_000_000 + (rem*1_000_000_000+int64(r)/2)/int64(r)
	return sim.Duration(ns)
}

// CellTime returns the time one 53-byte cell occupies on a link whose ATM
// payload rate is r (use the SPE payload rate, not the line rate: cells ride
// inside the SONET payload envelope).
//
// At STS-3c payload rate this is 2831 ns; the widely quoted "2.7 µs cell
// time at 155 Mb/s" uses the line rate (2726 ns).  The experiments quote
// both where the distinction matters.
func CellTime(r BitRate) sim.Duration { return TimePerBytes(r, CellSize) }

// CellRate returns cells per second at ATM payload rate r.
func CellRate(r BitRate) float64 { return float64(r) / (8 * CellSize) }

// CellsForPayload returns the number of cells needed to carry n bytes of
// adaptation-layer payload at perCell payload bytes per cell (48 for AAL5
// SAR, 44 for AAL3/4).
func CellsForPayload(n, perCell int) int {
	if perCell <= 0 {
		panic("units: non-positive per-cell payload")
	}
	if n <= 0 {
		return 0
	}
	return (n + perCell - 1) / perCell
}

// Efficiency returns the fraction of line bits that carry AAL payload for a
// PDU of n payload bytes occupying cells cells: n*8 / (cells*CellSize*8).
func Efficiency(n, cells int) float64 {
	if cells <= 0 {
		return 0
	}
	return float64(n) / float64(cells*CellSize)
}

// ThroughputBps converts a byte count delivered over a simulated duration to
// bits per second.
func ThroughputBps(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds()
}
