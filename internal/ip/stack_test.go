package ip

import (
	"bytes"
	"testing"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
)

// newPair wires two stations with a stack on each and one open VC.
func newPair(t *testing.T, method Method) (k *sim.Kernel, sa, sb *Stack, vc atm.VC) {
	t.Helper()
	k = sim.NewKernel()
	a, err := netsim.NewStation(k, nic.DefaultConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	netsim.Connect(k, a, b, netsim.LinkConfig{Delay: 10_000, Seed: 7})
	vc = atm.VC{VCI: 70}
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)
	sa = NewStack(a.Iface, method, Addr{10, 0, 0, 1})
	sb = NewStack(b.Iface, method, Addr{10, 0, 0, 2})
	return k, sa, sb, vc
}

func TestStackEndToEnd(t *testing.T) {
	for _, method := range []Method{LLCSnap, VCMux} {
		k, sa, sb, vc := newPair(t, method)
		var got []byte
		var gotHdr Header
		sb.Bind(vc, func(h Header, payload []byte, at sim.Time) {
			gotHdr = h
			got = append([]byte(nil), payload...)
		})
		msg := bytes.Repeat([]byte{0xA5}, 1460)
		if err := sa.Send(vc, ProtoTCP, sb.Addr(), msg, nil); err != nil {
			t.Fatal(err)
		}
		k.Run()
		if !bytes.Equal(got, msg) {
			t.Fatalf("%v: payload not delivered intact (%d bytes)", method, len(got))
		}
		if gotHdr.Proto != ProtoTCP || gotHdr.Src != sa.Addr() || gotHdr.Dst != sb.Addr() {
			t.Errorf("%v: header %+v", method, gotHdr)
		}
		if sa.Stats().TxDatagrams != 1 || sb.Stats().RxDatagrams != 1 {
			t.Errorf("%v: stats tx=%d rx=%d", method,
				sa.Stats().TxDatagrams, sb.Stats().RxDatagrams)
		}
	}
}

func TestStackNoHandler(t *testing.T) {
	k, sa, sb, vc := newPair(t, LLCSnap)
	if err := sa.Send(vc, ProtoUDP, sb.Addr(), []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if sb.Stats().NoHandler != 1 {
		t.Errorf("NoHandler = %d", sb.Stats().NoHandler)
	}
	// Bind then unbind: back to NoHandler.
	sb.Bind(vc, func(Header, []byte, sim.Time) {})
	sb.Unbind(vc)
	sa.Send(vc, ProtoUDP, sb.Addr(), []byte("y"), nil)
	k.Run()
	if sb.Stats().NoHandler != 2 {
		t.Errorf("NoHandler after unbind = %d", sb.Stats().NoHandler)
	}
}

func TestStackEncapMismatchCounted(t *testing.T) {
	// Sender speaks VC-mux, receiver expects LLC/SNAP: every frame counts
	// as an encapsulation error and nothing reaches the handler.
	k, sa, sb, vc := newPair(t, VCMux)
	sbLLC := NewStack(sb.Interface(), LLCSnap, sb.Addr())
	delivered := 0
	sbLLC.Bind(vc, func(Header, []byte, sim.Time) { delivered++ })
	sa.Send(vc, ProtoTCP, sb.Addr(), []byte("hello"), nil)
	k.Run()
	if delivered != 0 || sbLLC.Stats().EncapErrors != 1 {
		t.Errorf("delivered=%d encapErrors=%d", delivered, sbLLC.Stats().EncapErrors)
	}
}

func TestStackNonIPCounted(t *testing.T) {
	k, sa, sb, vc := newPair(t, LLCSnap)
	delivered := 0
	sb.Bind(vc, func(Header, []byte, sim.Time) { delivered++ })
	// Hand-craft an ARP frame on the same VC.
	sdu := Encapsulate(LLCSnap, EtherTypeARP, []byte{0, 1})
	if err := sa.Interface().Send(vc, sdu, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if delivered != 0 || sb.Stats().NonIP != 1 {
		t.Errorf("delivered=%d nonIP=%d", delivered, sb.Stats().NonIP)
	}
}

func TestStackHeaderErrorCounted(t *testing.T) {
	k, sa, sb, vc := newPair(t, LLCSnap)
	delivered := 0
	sb.Bind(vc, func(Header, []byte, sim.Time) { delivered++ })
	// An LLC/SNAP frame claiming IPv4 whose inner bytes are garbage.
	sdu := Encapsulate(LLCSnap, EtherTypeIPv4, bytes.Repeat([]byte{0xFF}, 24))
	sa.Interface().Send(vc, sdu, nil)
	k.Run()
	if delivered != 0 || sb.Stats().HeaderErrors != 1 {
		t.Errorf("delivered=%d headerErrors=%d", delivered, sb.Stats().HeaderErrors)
	}
}

func TestStackMTUEnforced(t *testing.T) {
	_, sa, sb, vc := newPair(t, LLCSnap)
	if sa.MTU() != sa.Interface().Config().MaxSDU-LLCSnapSize-HeaderSize {
		t.Errorf("MTU = %d", sa.MTU())
	}
	big := make([]byte, sa.MTU()+1)
	if err := sa.Send(vc, ProtoTCP, sb.Addr(), big, nil); err == nil {
		t.Error("over-MTU send accepted")
	}
	if sa.Stats().TxDatagrams != 0 {
		t.Error("failed send counted")
	}
}

func TestStackInstrument(t *testing.T) {
	k, sa, sb, vc := newPair(t, LLCSnap)
	reg := metrics.NewRegistry()
	sa.Instrument(reg, "a")
	sb.Instrument(reg, "b")
	sb.Bind(vc, func(Header, []byte, sim.Time) {})
	sa.Send(vc, ProtoTCP, sb.Addr(), []byte("z"), nil)
	k.Run()
	if reg.Counter("ip.a.tx_datagrams").Value() != 1 {
		t.Error("tx counter not recorded")
	}
	if reg.Counter("ip.b.rx_datagrams").Value() != 1 {
		t.Error("rx counter not recorded")
	}
}

func TestStackSendUnknownVC(t *testing.T) {
	_, sa, sb, _ := newPair(t, LLCSnap)
	if err := sa.Send(atm.VC{VCI: 999}, ProtoTCP, sb.Addr(), []byte("x"), nil); err == nil {
		t.Error("send on unopened VC accepted")
	}
}
