package ip

import (
	"bytes"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{TOS: 0x10, ID: 4242, TTL: 17, Proto: ProtoTCP,
		Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2}}
	payload := []byte("the quick brown fox")
	d := h.Datagram(payload)
	if len(d) != HeaderSize+len(payload) {
		t.Fatalf("datagram length %d", len(d))
	}
	got, pl, err := Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pl, payload) {
		t.Errorf("payload mismatch: %q", pl)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.Proto != ProtoTCP ||
		got.ID != 4242 || got.TOS != 0x10 || got.TTL != 17 {
		t.Errorf("header mismatch: %+v", got)
	}
	if int(got.TotalLen) != len(d) {
		t.Errorf("TotalLen %d want %d", got.TotalLen, len(d))
	}
}

func TestHeaderDefaultTTL(t *testing.T) {
	h := Header{Proto: ProtoUDP}
	got, _, err := Parse(h.Datagram(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.TTL != 64 {
		t.Errorf("default TTL %d, want 64", got.TTL)
	}
}

func TestParseRejects(t *testing.T) {
	h := Header{Proto: ProtoTCP, Src: Addr{1, 2, 3, 4}, Dst: Addr{5, 6, 7, 8}}
	good := h.Datagram([]byte("payload"))

	short := good[:HeaderSize-1]
	if _, _, err := Parse(short); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}

	badVer := append([]byte(nil), good...)
	badVer[0] = 0x65 // version 6
	if _, _, err := Parse(badVer); err != ErrVersion {
		t.Errorf("version: %v", err)
	}

	options := append([]byte(nil), good...)
	options[0] = 0x46 // IHL 6
	if _, _, err := Parse(options); err != ErrOptions {
		t.Errorf("options: %v", err)
	}

	flipped := append([]byte(nil), good...)
	flipped[12] ^= 0xff // corrupt src address
	if _, _, err := Parse(flipped); err != ErrChecksum {
		t.Errorf("checksum: %v", err)
	}

	// TotalLen beyond the buffer.
	cut := good[:len(good)-3]
	if _, _, err := Parse(cut); err != ErrTruncated {
		t.Errorf("cut: %v", err)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// RFC 1071: odd final byte is padded with zero on the right.
	b := []byte{0x12, 0x34, 0x56}
	want := ^uint16(0x1234 + 0x5600)
	if got := Checksum(b); got != want {
		t.Errorf("checksum %#04x want %#04x", got, want)
	}
	if got := ChecksumWith(0, b); got != want {
		t.Errorf("seeded checksum %#04x want %#04x", got, want)
	}
}

func TestPseudoChecksumVerifies(t *testing.T) {
	src, dst := Addr{192, 168, 0, 1}, Addr{192, 168, 0, 2}
	seg := []byte{0, 80, 0, 99, 0, 0, 0, 1, 0, 0, 0, 0, 0x50, 0x10, 0x20, 0x00, 0, 0, 0, 0, 'h', 'i'}
	seed := PseudoChecksum(src, dst, ProtoTCP, len(seg))
	ck := ChecksumWith(seed, seg)
	seg[16], seg[17] = byte(ck>>8), byte(ck)
	// A receiver summing the same pseudo-header over the checksummed bytes
	// gets zero.
	if got := ChecksumWith(seed, seg); got != 0 {
		t.Errorf("verification sum %#04x, want 0", got)
	}
	seg[21] ^= 1
	if got := ChecksumWith(seed, seg); got == 0 {
		t.Error("corruption not detected")
	}
}

func TestAddrString(t *testing.T) {
	if s := (Addr{10, 1, 2, 3}).String(); s != "10.1.2.3" {
		t.Errorf("got %q", s)
	}
}
