package ip

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/sim"
)

// Handler consumes one validated IPv4 datagram delivered on a bound VC.
// payload aliases the interface's delivery buffer and is valid only for the
// duration of the call (the same contract nic.Delivered gives).
type Handler func(h Header, payload []byte, at sim.Time)

// StackStats counts the stack's datapath events.
type StackStats struct {
	TxDatagrams  uint64
	RxDatagrams  uint64
	HeaderErrors uint64 // bad version/IHL/checksum/length
	EncapErrors  uint64 // SDU without the expected RFC 2684 header
	NoHandler    uint64 // frames on a VC nothing is bound to
	NonIP        uint64 // LLC/SNAP frames carrying another EtherType
}

// Stack is one endpoint's IP-over-ATM layer: it owns the interface's
// delivery callback, demultiplexes arriving AAL5 frames by VC, strips the
// RFC 2684 encapsulation, validates the IPv4 header, and hands the payload
// to the handler bound on that VC. Transmit is the mirror: one datagram per
// AAL5 frame via the interface's zero-copy send path.
//
// Exactly one Stack should exist per interface (it registers OnReceive);
// any number of VCs may be bound on it.
type Stack struct {
	iface   *nic.Interface
	method  Method
	addr    Addr
	bindVCs map[atm.VC]Handler
	id      uint16
	stats   StackStats

	mTx, mRx, mHdrErr, mEncapErr, mNoHandler *metrics.Counter
}

// NewStack attaches a stack to iface with the given encapsulation method
// and local address, taking over the interface's OnReceive callback.
func NewStack(iface *nic.Interface, method Method, addr Addr) *Stack {
	s := &Stack{iface: iface, method: method, addr: addr,
		bindVCs: make(map[atm.VC]Handler)}
	iface.OnReceive(s.deliver)
	return s
}

// Addr returns the stack's local address.
func (s *Stack) Addr() Addr { return s.addr }

// Method returns the stack's RFC 2684 encapsulation method.
func (s *Stack) Method() Method { return s.method }

// Interface exposes the underlying NIC.
func (s *Stack) Interface() *nic.Interface { return s.iface }

// Stats returns the stack's counters.
func (s *Stack) Stats() StackStats { return s.stats }

// MTU returns the largest IP payload one AAL5 frame can carry after the
// encapsulation and IPv4 headers.
func (s *Stack) MTU() int {
	return s.iface.Config().MaxSDU - s.method.Overhead() - HeaderSize
}

// Instrument registers the stack's counters ("ip.<name>.tx_datagrams", …)
// into reg; the struct counters keep updating either way.
func (s *Stack) Instrument(reg *metrics.Registry, name string) {
	p := "ip." + name + "."
	s.mTx = reg.Counter(p + "tx_datagrams")
	s.mRx = reg.Counter(p + "rx_datagrams")
	s.mHdrErr = reg.Counter(p + "header_errors")
	s.mEncapErr = reg.Counter(p + "encap_errors")
	s.mNoHandler = reg.Counter(p + "no_handler")
}

// Bind routes datagrams arriving on vc to fn (replacing any prior binding).
// The VC must already be open on the interface.
func (s *Stack) Bind(vc atm.VC, fn Handler) {
	if fn == nil {
		panic("ip: nil handler")
	}
	s.bindVCs[vc] = fn
}

// Unbind removes vc's handler; subsequent frames on it count as NoHandler.
func (s *Stack) Unbind(vc atm.VC) { delete(s.bindVCs, vc) }

// Send transmits one datagram on vc: proto/dst fill the IPv4 header (src is
// the stack's address), payload becomes the IP payload, and the whole
// datagram is RFC 2684-encapsulated into a single AAL5 frame. onSent (may
// be nil) fires at the transmit-complete interrupt, when the buffer is
// reusable.
func (s *Stack) Send(vc atm.VC, proto uint8, dst Addr, payload []byte, onSent func()) error {
	if len(payload) > s.MTU() {
		return fmt.Errorf("ip: payload %d exceeds MTU %d", len(payload), s.MTU())
	}
	oh := s.method.Overhead()
	sdu := make([]byte, oh+HeaderSize+len(payload))
	if oh > 0 {
		copy(sdu, llcSnapPrefix[:])
		sdu[6] = byte(EtherTypeIPv4 >> 8)
		sdu[7] = byte(EtherTypeIPv4 & 0xff)
	}
	s.id++
	h := Header{ID: s.id, Proto: proto, Src: s.addr, Dst: dst}
	h.Marshal(sdu[oh:], len(payload))
	copy(sdu[oh+HeaderSize:], payload)
	// The stack built (and owns) the SDU, so the interface's zero-copy
	// path applies: the buffer is the DMA source until onSent.
	if err := s.iface.SendOwned(vc, sdu, onSent); err != nil {
		return err
	}
	s.stats.TxDatagrams++
	s.mTx.Inc()
	return nil
}

// deliver is the interface's OnReceive callback: demux, decap, validate,
// dispatch.
func (s *Stack) deliver(d nic.Delivered) {
	fn := s.bindVCs[d.VC]
	if fn == nil {
		s.stats.NoHandler++
		s.mNoHandler.Inc()
		return
	}
	et, pdu, err := Decapsulate(s.method, d.SDU)
	if err != nil {
		s.stats.EncapErrors++
		s.mEncapErr.Inc()
		return
	}
	if et != EtherTypeIPv4 {
		s.stats.NonIP++
		return
	}
	h, payload, err := Parse(pdu)
	if err != nil {
		s.stats.HeaderErrors++
		s.mHdrErr.Inc()
		return
	}
	s.stats.RxDatagrams++
	s.mRx.Inc()
	fn(h, payload, d.At)
}
