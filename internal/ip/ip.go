// Package ip carries internet traffic over the ATM testbed: IPv4 datagrams
// wrapped per RFC 2684 (LLC/SNAP or VC-multiplexed) into AAL5 SDUs, and a
// per-endpoint Stack that demultiplexes arriving frames by virtual channel
// to bound protocol handlers. It is the classical-IP-over-ATM shim the
// satellite-ATM TCP studies assume between the transport and the adaptation
// layer: one VC per conversation, one datagram per AAL5 frame, no
// fragmentation (the AAL5 MTU is far above any IP MTU we use).
package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderSize is the option-less IPv4 header length in bytes.
const HeaderSize = 20

// IP protocol numbers (the Protocol header field).
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Errors surfaced by datagram parsing.
var (
	ErrTruncated = errors.New("ip: datagram shorter than its header claims")
	ErrVersion   = errors.New("ip: not an IPv4 datagram")
	ErrChecksum  = errors.New("ip: header checksum mismatch")
	ErrOptions   = errors.New("ip: IHL with options not supported")
)

// Addr is an IPv4 address.
type Addr [4]byte

// String renders dotted-quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Header is an option-less IPv4 header. TotalLen and Checksum are computed
// on marshal; parsed headers carry the wire values.
type Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src, Dst Addr
}

// Marshal writes the header for a payload of the given length into the
// first HeaderSize bytes of dst (which must be at least that long),
// computing TotalLen and the checksum.
func (h *Header) Marshal(dst []byte, payloadLen int) {
	_ = dst[HeaderSize-1]
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	dst[0] = 0x45 // version 4, IHL 5
	dst[1] = h.TOS
	binary.BigEndian.PutUint16(dst[2:4], uint16(HeaderSize+payloadLen))
	binary.BigEndian.PutUint16(dst[4:6], h.ID)
	binary.BigEndian.PutUint16(dst[6:8], 0x4000) // DF, no fragments
	dst[8] = ttl
	dst[9] = h.Proto
	dst[10], dst[11] = 0, 0
	copy(dst[12:16], h.Src[:])
	copy(dst[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(dst[10:12], Checksum(dst[:HeaderSize]))
}

// Datagram builds a complete IPv4 datagram around payload.
func (h *Header) Datagram(payload []byte) []byte {
	d := make([]byte, HeaderSize+len(payload))
	h.Marshal(d, len(payload))
	copy(d[HeaderSize:], payload)
	return d
}

// Parse validates b as an IPv4 datagram and returns its header and payload.
// The payload aliases b (no copy).
func Parse(b []byte) (Header, []byte, error) {
	var h Header
	if len(b) < HeaderSize {
		return h, nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return h, nil, ErrVersion
	}
	if b[0]&0x0f != 5 {
		return h, nil, ErrOptions
	}
	if Checksum(b[:HeaderSize]) != 0 {
		return h, nil, ErrChecksum
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < HeaderSize || int(h.TotalLen) > len(b) {
		return h, nil, ErrTruncated
	}
	return h, b[HeaderSize:h.TotalLen], nil
}

// Checksum is the internet checksum (RFC 1071) over b: the 16-bit ones'
// complement of the ones'-complement sum. Over a header whose checksum field
// holds the transmitted value it returns 0 iff the header is intact.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// PseudoChecksum folds the IPv4 pseudo-header (src, dst, protocol, length)
// into a partial sum for transport checksums (TCP/UDP). Combine with the
// segment bytes via ChecksumWith.
func PseudoChecksum(src, dst Addr, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// ChecksumWith computes the internet checksum of b seeded with a partial
// sum (from PseudoChecksum).
func ChecksumWith(seed uint32, b []byte) uint16 {
	sum := seed
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
