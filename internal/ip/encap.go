package ip

import "errors"

// Method selects the RFC 2684 multiprotocol encapsulation carried in each
// AAL5 SDU.
type Method uint8

const (
	// LLCSnap prefixes every datagram with the 8-byte LLC/SNAP header
	// (AA-AA-03, OUI 00-00-00, EtherType), letting one VC carry several
	// protocols. This is the RFC 2684 default and what the satellite-ATM
	// testbeds ran.
	LLCSnap Method = iota
	// VCMux carries the bare datagram: the protocol is implied by the VC
	// itself (one protocol per VC, zero header overhead).
	VCMux
)

// String names the method as RFC 2684 does.
func (m Method) String() string {
	if m == VCMux {
		return "vc-mux"
	}
	return "llc/snap"
}

// Overhead returns the encapsulation bytes added per datagram.
func (m Method) Overhead() int {
	if m == VCMux {
		return 0
	}
	return LLCSnapSize
}

// LLCSnapSize is the LLC/SNAP routed-PDU header length: LLC (3) + OUI (3) +
// EtherType (2).
const LLCSnapSize = 8

// EtherTypes carried in the SNAP header.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
	EtherTypeIPv6 = 0x86DD
)

// Encapsulation errors.
var (
	ErrNotLLCSnap = errors.New("ip: payload does not start with an LLC/SNAP routed-PDU header")
	ErrShortEncap = errors.New("ip: payload shorter than its encapsulation header")
)

// llcSnapPrefix is the fixed LLC+OUI portion for routed (non-ISO) PDUs:
// DSAP AA, SSAP AA, control 03 (UI), OUI 00-00-00.
var llcSnapPrefix = [6]byte{0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00}

// Encapsulate wraps one datagram for transmission as an AAL5 SDU. LLCSnap
// copies into a fresh buffer with the 8-byte header; VCMux returns the
// datagram unchanged (zero copy).
func Encapsulate(m Method, etherType uint16, dgram []byte) []byte {
	if m == VCMux {
		return dgram
	}
	sdu := make([]byte, LLCSnapSize+len(dgram))
	copy(sdu, llcSnapPrefix[:])
	sdu[6] = byte(etherType >> 8)
	sdu[7] = byte(etherType)
	copy(sdu[LLCSnapSize:], dgram)
	return sdu
}

// Decapsulate strips the RFC 2684 header from a received AAL5 SDU and
// returns the EtherType and the inner PDU (aliasing sdu). A VCMux SDU is
// assumed to carry IPv4, the only VC-multiplexed protocol this stack binds.
func Decapsulate(m Method, sdu []byte) (etherType uint16, pdu []byte, err error) {
	if m == VCMux {
		return EtherTypeIPv4, sdu, nil
	}
	et, pdu, ok := DecodeLLCSnap(sdu)
	if !ok {
		if len(sdu) < LLCSnapSize {
			return 0, nil, ErrShortEncap
		}
		return 0, nil, ErrNotLLCSnap
	}
	return et, pdu, nil
}

// DecodeLLCSnap recognizes an LLC/SNAP routed-PDU header at the start of b
// and returns the EtherType and the bytes after it. It is the shared
// decoder for the stack's receive path and cellview's payload loupe.
func DecodeLLCSnap(b []byte) (etherType uint16, pdu []byte, ok bool) {
	if len(b) < LLCSnapSize {
		return 0, nil, false
	}
	for i, want := range llcSnapPrefix {
		if b[i] != want {
			return 0, nil, false
		}
	}
	return uint16(b[6])<<8 | uint16(b[7]), b[LLCSnapSize:], true
}

// EtherTypeName names the EtherTypes this stack knows, for diagnostics.
func EtherTypeName(et uint16) string {
	switch et {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeIPv6:
		return "IPv6"
	default:
		return "unknown"
	}
}
