package ip

import (
	"bytes"
	"testing"
)

func TestLLCSnapRoundTrip(t *testing.T) {
	dgram := (&Header{Proto: ProtoTCP}).Datagram([]byte("data"))
	sdu := Encapsulate(LLCSnap, EtherTypeIPv4, dgram)
	if len(sdu) != LLCSnapSize+len(dgram) {
		t.Fatalf("sdu length %d", len(sdu))
	}
	if !bytes.Equal(sdu[:3], []byte{0xAA, 0xAA, 0x03}) {
		t.Errorf("LLC bytes % x", sdu[:3])
	}
	et, pdu, err := Decapsulate(LLCSnap, sdu)
	if err != nil {
		t.Fatal(err)
	}
	if et != EtherTypeIPv4 {
		t.Errorf("ethertype %#04x", et)
	}
	if !bytes.Equal(pdu, dgram) {
		t.Error("inner PDU mismatch")
	}
}

func TestVCMuxRoundTrip(t *testing.T) {
	dgram := (&Header{Proto: ProtoTCP}).Datagram([]byte("data"))
	sdu := Encapsulate(VCMux, EtherTypeIPv4, dgram)
	if &sdu[0] != &dgram[0] {
		t.Error("VC-mux should not copy")
	}
	et, pdu, err := Decapsulate(VCMux, sdu)
	if err != nil || et != EtherTypeIPv4 || !bytes.Equal(pdu, dgram) {
		t.Errorf("vc-mux decap: %v %#04x", err, et)
	}
}

func TestDecapsulateRejects(t *testing.T) {
	if _, _, err := Decapsulate(LLCSnap, []byte{0xAA, 0xAA}); err != ErrShortEncap {
		t.Errorf("short: %v", err)
	}
	notSnap := []byte{0xFE, 0xFE, 0x03, 0, 0, 0, 0x08, 0x00, 1, 2}
	if _, _, err := Decapsulate(LLCSnap, notSnap); err != ErrNotLLCSnap {
		t.Errorf("not-snap: %v", err)
	}
}

func TestDecodeLLCSnapOtherProtocols(t *testing.T) {
	arp := Encapsulate(LLCSnap, EtherTypeARP, []byte{1, 2, 3})
	et, pdu, ok := DecodeLLCSnap(arp)
	if !ok || et != EtherTypeARP || len(pdu) != 3 {
		t.Errorf("arp decode: ok=%v et=%#04x", ok, et)
	}
	if _, _, ok := DecodeLLCSnap([]byte{0xAA}); ok {
		t.Error("short buffer decoded")
	}
}

func TestMethodStringsAndOverhead(t *testing.T) {
	if LLCSnap.String() != "llc/snap" || VCMux.String() != "vc-mux" {
		t.Error("method names")
	}
	if LLCSnap.Overhead() != 8 || VCMux.Overhead() != 0 {
		t.Error("overhead")
	}
	for _, tc := range []struct {
		et   uint16
		want string
	}{{EtherTypeIPv4, "IPv4"}, {EtherTypeARP, "ARP"}, {EtherTypeIPv6, "IPv6"}, {0x1234, "unknown"}} {
		if got := EtherTypeName(tc.et); got != tc.want {
			t.Errorf("EtherTypeName(%#04x) = %q", tc.et, got)
		}
	}
}
