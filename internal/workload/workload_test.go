package workload

import (
	"testing"

	"repro/internal/sim"
)

func TestFixed(t *testing.T) {
	g := &Fixed{Size: 100, Gap: 50}
	for i := 0; i < 5; i++ {
		size, gap := g.Next()
		if size != 100 || gap != 50 {
			t.Fatalf("Next() = %d,%d", size, gap)
		}
	}
	if g.Name() != "fixed-100B" {
		t.Fatalf("Name() = %q", g.Name())
	}
}

func TestCBR(t *testing.T) {
	g := &CBR{FrameSize: 8000, Period: 33 * sim.Millisecond}
	size, gap := g.Next()
	if size != 8000 || gap != 33*sim.Millisecond {
		t.Fatalf("Next() = %d,%v", size, gap)
	}
}

func TestBimodalMix(t *testing.T) {
	g := NewBimodalIP(42, 0)
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		size, _ := g.Next()
		switch size {
		case 64:
			small++
		case 9180:
			large++
		default:
			t.Fatalf("unexpected size %d", size)
		}
	}
	frac := float64(small) / 10000
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("small fraction %v, want ~0.7", frac)
	}
}

func TestBimodalGapExponential(t *testing.T) {
	g := NewBimodalIP(7, 1000)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		_, gap := g.Next()
		sum += float64(gap)
	}
	mean := sum / float64(n)
	if mean < 950 || mean > 1050 {
		t.Fatalf("mean gap %v, want ~1000", mean)
	}
}

func TestBimodalDeterministic(t *testing.T) {
	a, b := NewBimodalIP(9, 500), NewBimodalIP(9, 500)
	for i := 0; i < 1000; i++ {
		s1, g1 := a.Next()
		s2, g2 := b.Next()
		if s1 != s2 || g1 != g2 {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestOnOffAlternates(t *testing.T) {
	g := NewOnOff(3, 1000, 100*sim.Microsecond, 500*sim.Microsecond, 10*sim.Microsecond)
	longGaps, shortGaps := 0, 0
	for i := 0; i < 10000; i++ {
		size, gap := g.Next()
		if size != 1000 {
			t.Fatalf("size %d", size)
		}
		if gap == 10*sim.Microsecond {
			shortGaps++
		} else {
			longGaps++
		}
	}
	if longGaps == 0 || shortGaps == 0 {
		t.Fatalf("no alternation: %d long, %d short", longGaps, shortGaps)
	}
	if shortGaps < longGaps {
		t.Fatalf("bursts shorter than silences in draw count: %d vs %d", shortGaps, longGaps)
	}
}

func TestSizeSweep(t *testing.T) {
	g := &SizeSweep{Sizes: []int{10, 20}, Repeat: 2}
	want := []int{10, 10, 20, 20, 10, 10}
	for i, w := range want {
		size, gap := g.Next()
		if size != w || gap != 0 {
			t.Fatalf("draw %d: %d, want %d", i, size, w)
		}
	}
}

func TestSizeSweepEmpty(t *testing.T) {
	g := &SizeSweep{}
	if size, _ := g.Next(); size != 0 {
		t.Fatal("empty sweep returned a size")
	}
}

func TestNames(t *testing.T) {
	gens := []Generator{
		&Fixed{Size: 1}, &CBR{FrameSize: 1, Period: 1},
		NewBimodalIP(1, 1), NewOnOff(1, 1, 1, 1, 1), &SizeSweep{},
	}
	seen := map[string]bool{}
	for _, g := range gens {
		n := g.Name()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}
