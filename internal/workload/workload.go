// Package workload generates the traffic the experiments offer to the
// interfaces: packet sizes and inter-departure gaps.
//
// Generators are deterministic given their seed, so every experiment run is
// reproducible bit for bit.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Generator produces a stream of (packet size, gap before next departure)
// draws.
type Generator interface {
	// Next returns the next packet's SDU size in bytes and the idle gap
	// to wait after initiating it before offering the next.
	Next() (size int, gap sim.Duration)
	// Name identifies the workload in reports.
	Name() string
}

// Fixed emits constant-size packets at a constant gap (gap 0 = as fast as
// the closed loop allows).
type Fixed struct {
	Size int
	Gap  sim.Duration
}

// Next implements Generator.
func (f *Fixed) Next() (int, sim.Duration) { return f.Size, f.Gap }

// Name implements Generator.
func (f *Fixed) Name() string { return fmt.Sprintf("fixed-%dB", f.Size) }

// CBR is a constant-bit-rate source (video-like): fixed frames at a fixed
// period.
type CBR struct {
	FrameSize int
	Period    sim.Duration
}

// Next implements Generator.
func (c *CBR) Next() (int, sim.Duration) { return c.FrameSize, c.Period }

// Name implements Generator.
func (c *CBR) Name() string {
	return fmt.Sprintf("cbr-%dB@%s", c.FrameSize, sim.Time(c.Period))
}

// BimodalIP mimics early-90s IP traffic: a majority of tiny packets
// (acknowledgements, interactive traffic) and a tail of MTU-size bulk
// packets carrying most of the bytes.
type BimodalIP struct {
	// SmallSize/LargeSize default to 64 and 9180 when zero.
	SmallSize int
	LargeSize int
	// SmallProb is the probability of a small packet (default 0.7).
	SmallProb float64
	// MeanGap is the mean exponential inter-departure gap.
	MeanGap sim.Duration

	rng *sim.Rand
}

// NewBimodalIP returns a seeded bimodal generator.
func NewBimodalIP(seed uint64, meanGap sim.Duration) *BimodalIP {
	return &BimodalIP{
		SmallSize: 64, LargeSize: 9180, SmallProb: 0.7,
		MeanGap: meanGap, rng: sim.NewRand(seed),
	}
}

// Next implements Generator.
func (b *BimodalIP) Next() (int, sim.Duration) {
	size := b.LargeSize
	if b.rng.Bernoulli(b.SmallProb) {
		size = b.SmallSize
	}
	gap := sim.Duration(0)
	if b.MeanGap > 0 {
		gap = b.rng.ExpDuration(b.MeanGap)
	}
	return size, gap
}

// Name implements Generator.
func (b *BimodalIP) Name() string { return "bimodal-ip" }

// OnOff is a bursty source: during an ON period it emits fixed-size packets
// back to back; OFF periods are silent. Period lengths are exponential.
type OnOff struct {
	Size    int
	MeanOn  sim.Duration // mean burst duration
	MeanOff sim.Duration // mean silence duration
	PktGap  sim.Duration // spacing within a burst

	rng     *sim.Rand
	onUntil sim.Duration // remaining ON time budget
}

// NewOnOff returns a seeded bursty generator.
func NewOnOff(seed uint64, size int, meanOn, meanOff, pktGap sim.Duration) *OnOff {
	return &OnOff{Size: size, MeanOn: meanOn, MeanOff: meanOff, PktGap: pktGap,
		rng: sim.NewRand(seed)}
}

// Next implements Generator.
func (o *OnOff) Next() (int, sim.Duration) {
	if o.onUntil <= 0 {
		// Start a new burst; the gap before it is the OFF period.
		o.onUntil = o.rng.ExpDuration(o.MeanOn)
		return o.Size, o.rng.ExpDuration(o.MeanOff)
	}
	o.onUntil -= o.PktGap
	return o.Size, o.PktGap
}

// Name implements Generator.
func (o *OnOff) Name() string { return "bursty-onoff" }

// SizeSweep iterates a fixed list of sizes, repeating each `repeat` times —
// the generator behind throughput-vs-size curves.
type SizeSweep struct {
	Sizes  []int
	Repeat int

	i, r int
}

// Next implements Generator.
func (s *SizeSweep) Next() (int, sim.Duration) {
	if len(s.Sizes) == 0 {
		return 0, 0
	}
	size := s.Sizes[s.i]
	s.r++
	if s.r >= s.Repeat {
		s.r = 0
		s.i = (s.i + 1) % len(s.Sizes)
	}
	return size, 0
}

// Name implements Generator.
func (s *SizeSweep) Name() string { return "size-sweep" }
