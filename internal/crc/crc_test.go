package crc

import (
	"testing"
	"testing/quick"
)

func TestHECMatchesBitwise(t *testing.T) {
	f := func(h [4]byte) bool { return HEC(h) == HECBitwise(h) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHECKnownVector(t *testing.T) {
	// All-zero header: CRC of 0 is 0, coset gives 0x55. This is the idle
	// cell pattern's well-known HEC.
	if got := HEC([4]byte{0, 0, 0, 0}); got != 0x55 {
		t.Fatalf("HEC(0,0,0,0) = %#02x, want 0x55", got)
	}
	// Unassigned-cell header 00 00 00 01 has HEC 0x52 per I.432 examples.
	if got := HEC([4]byte{0x00, 0x00, 0x00, 0x01}); got != 0x52 {
		t.Fatalf("HEC(00 00 00 01) = %#02x, want 0x52", got)
	}
}

func TestHECCheckValidHeader(t *testing.T) {
	h := [5]byte{0x12, 0x34, 0x56, 0x78, 0}
	h[4] = HEC([4]byte{0x12, 0x34, 0x56, 0x78})
	ok, corrected := HECCheck(&h)
	if !ok || corrected {
		t.Fatalf("valid header: ok=%v corrected=%v", ok, corrected)
	}
}

func TestHECCheckCorrectsEverySingleBitError(t *testing.T) {
	orig := [5]byte{0xa5, 0x5a, 0x0f, 0xf0, 0}
	orig[4] = HEC([4]byte{0xa5, 0x5a, 0x0f, 0xf0})
	for bit := 0; bit < 40; bit++ {
		h := orig
		h[bit/8] ^= 0x80 >> (bit % 8)
		ok, corrected := HECCheck(&h)
		if !ok || !corrected {
			t.Fatalf("bit %d: ok=%v corrected=%v", bit, ok, corrected)
		}
		if h != orig {
			t.Fatalf("bit %d: correction produced %x, want %x", bit, h, orig)
		}
	}
}

func TestHECCheckRejectsDoubleBitErrors(t *testing.T) {
	orig := [5]byte{0x01, 0x02, 0x03, 0x04, 0}
	orig[4] = HEC([4]byte{0x01, 0x02, 0x03, 0x04})
	rejected, miscorrected := 0, 0
	for b1 := 0; b1 < 40; b1++ {
		for b2 := b1 + 1; b2 < 40; b2++ {
			h := orig
			h[b1/8] ^= 0x80 >> (b1 % 8)
			h[b2/8] ^= 0x80 >> (b2 % 8)
			ok, corrected := HECCheck(&h)
			switch {
			case !ok:
				rejected++
			case corrected:
				miscorrected++ // corrected to the *wrong* header
				if h == orig {
					t.Fatalf("double error %d,%d claimed corrected to original", b1, b2)
				}
			default:
				t.Fatalf("double error %d,%d passed as error-free", b1, b2)
			}
		}
	}
	// An (40,32) code with 8 check bits cannot correct 2-bit errors; every
	// double error must be either rejected or miscorrected, and a CRC-8
	// with this polynomial detects (rejects) the large majority.
	if rejected == 0 {
		t.Fatal("no double-bit errors rejected; correction logic broken")
	}
	total := rejected + miscorrected
	if total != 40*39/2 {
		t.Fatalf("accounted %d of %d double errors", total, 40*39/2)
	}
}

func TestHECSingleBitSyndromesDistinct(t *testing.T) {
	seen := map[byte]int{}
	base := [5]byte{0, 0, 0, 0, HEC([4]byte{})}
	for bit := 0; bit < 40; bit++ {
		h := base
		h[bit/8] ^= 0x80 >> (bit % 8)
		s := hecSyndrome(h)
		if s == 0 {
			t.Fatalf("bit %d produced zero syndrome", bit)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("bits %d and %d share syndrome %#02x", prev, bit, s)
		}
		seen[s] = bit
	}
}

func TestCRC10MatchesBitwise(t *testing.T) {
	f := func(p []byte) bool { return CRC10(p) == CRC10Bitwise(p) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC10Empty(t *testing.T) {
	if got := CRC10(nil); got != 0 {
		t.Fatalf("CRC10(nil) = %#x, want 0", got)
	}
}

func TestCRC10FillResidue(t *testing.T) {
	// Filling the trailing 10-bit field then running the register over
	// the whole PDU yields residue 0.
	pdu := append([]byte("ATM SAR payload test vector...."), 0, 0)
	CRC10Fill(pdu)
	if !CRC10Check(pdu) {
		t.Fatalf("residue = %#x, want 0", CRC10(pdu))
	}
}

func TestCRC10FillPreservesLI(t *testing.T) {
	// The 6 high bits of the penultimate byte carry the AAL3/4 LI field;
	// CRC10Fill must leave them alone.
	pdu := make([]byte, 48)
	pdu[46] = 0xac // LI bits 101011, low 2 bits dirty
	pdu[47] = 0xff // dirty CRC bits
	CRC10Fill(pdu)
	if pdu[46]&0xfc != 0xac {
		t.Fatalf("LI bits clobbered: %#02x", pdu[46])
	}
	if !CRC10Check(pdu) {
		t.Fatal("filled PDU does not verify")
	}
}

func TestCRC10FillShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CRC10Fill on 1 byte did not panic")
		}
	}()
	CRC10Fill([]byte{1})
}

func TestCRC10DetectsCorruption(t *testing.T) {
	msg := make([]byte, 44)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	c := CRC10(msg)
	for bit := 0; bit < len(msg)*8; bit += 13 {
		m := append([]byte{}, msg...)
		m[bit/8] ^= 1 << (bit % 8)
		if CRC10(m) == c {
			t.Fatalf("single-bit flip at %d not detected", bit)
		}
	}
}

func TestCRC32MatchesBitwise(t *testing.T) {
	f := func(p []byte) bool { return CRC32(p) == CRC32Bitwise(p) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// crc32ByteSerial is the pre-slicing byte-table loop, retained to pin the
// slicing-by-8 path at every alignment and length.
func crc32ByteSerial(crc uint32, p []byte) uint32 {
	for _, b := range p {
		crc = crc<<8 ^ crc32Table[byte(crc>>24)^b]
	}
	return crc
}

func TestCRC32SlicingMatchesByteSerial(t *testing.T) {
	msg := make([]byte, 257)
	for i := range msg {
		msg[i] = byte(i*131 + 7)
	}
	for start := 0; start < 9; start++ {
		for n := 0; n <= 64; n++ {
			if start+n > len(msg) {
				break
			}
			p := msg[start : start+n]
			if got, want := CRC32Update(0xffff_ffff, p), crc32ByteSerial(0xffff_ffff, p); got != want {
				t.Fatalf("start %d len %d: slicing %#08x, byte-serial %#08x", start, n, got, want)
			}
		}
	}
}

func TestHECOKMatchesHEC(t *testing.T) {
	f := func(h [4]byte) bool {
		hdr := []byte{h[0], h[1], h[2], h[3], HEC(h)}
		if !HECOK(hdr) {
			return false
		}
		hdr[4] ^= 0x01
		return !HECOK(hdr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32KnownVector(t *testing.T) {
	// "123456789" under CRC-32/MPEG-2-style MSB-first with pre/post
	// inversion (the AAL5 form, aka CRC-32/BZIP2): 0xFC891918.
	if got := CRC32([]byte("123456789")); got != 0xfc891918 {
		t.Fatalf("CRC32(123456789) = %#08x, want 0xfc891918", got)
	}
}

func TestCRC32Incremental(t *testing.T) {
	msg := make([]byte, 480)
	for i := range msg {
		msg[i] = byte(i)
	}
	whole := CRC32(msg)
	// Fold in 48-byte (cell payload) pieces as the hardware does.
	reg := uint32(0xffff_ffff)
	for off := 0; off < len(msg); off += 48 {
		reg = CRC32Update(reg, msg[off:off+48])
	}
	if got := reg ^ 0xffff_ffff; got != whole {
		t.Fatalf("incremental CRC %#08x != whole %#08x", got, whole)
	}
}

func TestCRC32Empty(t *testing.T) {
	// Empty message: preset^post-invert = 0.
	if got := CRC32(nil); got != 0 {
		t.Fatalf("CRC32(nil) = %#08x, want 0", got)
	}
}

func TestCRC32DetectsBurstErrors(t *testing.T) {
	msg := make([]byte, 1000)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	c := CRC32(msg)
	// Any burst up to 32 bits must be detected.
	for start := 0; start < 968; start += 97 {
		m := append([]byte{}, msg...)
		for j := 0; j < 4; j++ {
			m[start+j] ^= 0xff
		}
		if CRC32(m) == c {
			t.Fatalf("32-bit burst at byte %d not detected", start)
		}
	}
}

// Property: CRC10Fill always produces a PDU with zero residue, and any
// single bit flip breaks it.
func TestPropertyCRC10FillResidue(t *testing.T) {
	f := func(p []byte, flip uint16) bool {
		pdu := append(append([]byte{}, p...), 0, 0)
		CRC10Fill(pdu)
		if !CRC10Check(pdu) {
			return false
		}
		bit := int(flip) % (len(pdu) * 8)
		pdu[bit/8] ^= 1 << (bit % 8)
		return !CRC10Check(pdu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte changes CRC32.
func TestPropertyCRC32SensitiveToEveryByte(t *testing.T) {
	f := func(p []byte, idx uint16, delta byte) bool {
		if len(p) == 0 || delta == 0 {
			return true
		}
		i := int(idx) % len(p)
		c := CRC32(p)
		q := append([]byte{}, p...)
		q[i] ^= delta
		return CRC32(q) != c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHEC(b *testing.B) {
	h := [4]byte{0x12, 0x34, 0x56, 0x78}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HEC(h)
	}
}

func BenchmarkCRC32Cell(b *testing.B) {
	p := make([]byte, 48)
	b.SetBytes(48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = CRC32Update(0xffffffff, p)
	}
}

func BenchmarkCRC10Cell(b *testing.B) {
	p := make([]byte, 44)
	b.SetBytes(44)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = CRC10(p)
	}
}
