// Package crc implements the three cyclic redundancy checks the ATM host
// interface depends on:
//
//   - HEC: the 8-bit header error control over the first four header bytes
//     of every cell, generator x⁸+x²+x+1 with the ITU coset 0x55 added, able
//     to correct any single-bit header error;
//   - CRC-10: the per-cell SAR payload check used by AAL3/4, generator
//     x¹⁰+x⁹+x⁵+x⁴+x+1;
//   - CRC-32: the AAL5 CPCS trailer check, the IEEE 802.3 polynomial applied
//     MSB-first with pre- and post-inversion, as I.363 specifies.
//
// Each check has a bitwise reference implementation and a table-driven fast
// implementation; the tests cross-validate them. On the real adapter these
// are dedicated hardware, so the simulator charges them zero engine cycles —
// but the bytes still have to be right for frames to survive the wire model.
package crc

// ---------------------------------------------------------------------------
// HEC (CRC-8 over the first 4 header bytes)

// hecPoly is x⁸+x²+x+1 with the x⁸ term implicit.
const hecPoly = 0x07

// HECCoset is the fixed pattern XORed into the HEC register after
// computation, per ITU-T I.432.  It improves cell delineation robustness
// against slips in an all-zeros header stream.
const HECCoset = 0x55

var hecTable [256]byte

func init() {
	for i := 0; i < 256; i++ {
		crc := byte(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ hecPoly
			} else {
				crc <<= 1
			}
		}
		hecTable[i] = crc
	}
}

// HEC computes the header error control byte over the four bytes h.
func HEC(h [4]byte) byte {
	var crc byte
	for _, b := range h {
		crc = hecTable[crc^b]
	}
	return crc ^ HECCoset
}

// HECBitwise is the reference bit-serial HEC, used to validate the table.
func HECBitwise(h [4]byte) byte {
	var crc byte
	for _, by := range h {
		crc ^= by
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ hecPoly
			} else {
				crc <<= 1
			}
		}
	}
	return crc ^ HECCoset
}

// HECOK reports whether the five bytes at h[0:5] carry an exactly matching
// HEC (no single-bit correction attempted). This is the check cell
// delineation performs on every candidate byte offset while hunting, kept
// copy-free so the sliding-window loop stays four table loads per offset.
func HECOK(h []byte) bool {
	crc := hecTable[h[0]]
	crc = hecTable[crc^h[1]]
	crc = hecTable[crc^h[2]]
	crc = hecTable[crc^h[3]]
	return crc^HECCoset == h[4]
}

// hecSyndrome returns the HEC syndrome for a received 5-byte header: zero
// means the header is error-free.
func hecSyndrome(h [5]byte) byte {
	var first [4]byte
	copy(first[:], h[:4])
	return HEC(first) ^ h[4]
}

// singleBitSyndrome[s] is the bit position (0..39, MSB of byte 0 = 0) whose
// single flip produces syndrome s, or -1 if no single-bit error does.
var singleBitSyndrome [256]int8

func init() {
	for i := range singleBitSyndrome {
		singleBitSyndrome[i] = -1
	}
	var zero [5]byte
	zh := hecSyndrome([5]byte{zero[0], zero[1], zero[2], zero[3], HEC([4]byte{})})
	_ = zh
	// Flip each of the 40 header bits in an otherwise correct header and
	// record the syndrome it produces. Syndromes are linear, so the map
	// holds for any header.
	base := [5]byte{0, 0, 0, 0, HEC([4]byte{})}
	for bit := 0; bit < 40; bit++ {
		h := base
		h[bit/8] ^= 0x80 >> (bit % 8)
		s := hecSyndrome(h)
		if s == 0 {
			continue // cannot happen for a nonzero flip
		}
		singleBitSyndrome[s] = int8(bit)
	}
}

// HECCheck verifies a received 5-byte header. It returns:
//
//	ok=true, corrected=false         — header valid as received;
//	ok=true, corrected=true          — a single-bit error was corrected
//	                                   in place;
//	ok=false                         — multi-bit error, discard the cell.
func HECCheck(h *[5]byte) (ok, corrected bool) {
	s := hecSyndrome(*h)
	if s == 0 {
		return true, false
	}
	if bit := singleBitSyndrome[s]; bit >= 0 {
		h[bit/8] ^= 0x80 >> (bit % 8)
		return true, true
	}
	return false, false
}

// ---------------------------------------------------------------------------
// CRC-10 (AAL3/4 SAR payload)

// crc10Poly is x¹⁰+x⁹+x⁵+x⁴+x+1 with x¹⁰ implicit: 0b11_0011_0011.
const crc10Poly = 0x633

var crc10Table [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 2
		for b := 0; b < 8; b++ {
			if crc&0x200 != 0 {
				crc = crc<<1 ^ crc10Poly
			} else {
				crc <<= 1
			}
			crc &= 0x3ff
		}
		crc10Table[i] = crc
	}
}

// CRC10 computes the 10-bit SAR check over p, initial register zero.
func CRC10(p []byte) uint16 {
	var crc uint16
	for _, b := range p {
		crc = (crc<<8)&0x3ff ^ crc10Table[byte(crc>>2)^b]
	}
	return crc
}

// CRC10Bitwise is the reference bit-serial CRC-10.
func CRC10Bitwise(p []byte) uint16 {
	var crc uint16
	for _, by := range p {
		for b := 0; b < 8; b++ {
			bit := (by >> (7 - b)) & 1
			top := (crc >> 9) & 1
			crc = (crc << 1) & 0x3ff
			if top^uint16(bit) != 0 {
				crc ^= crc10Poly & 0x3ff
			}
		}
	}
	return crc
}

// crc10Bits advances the register over the most-significant nbits bits of p.
func crc10Bits(crc uint16, p []byte, nbits int) uint16 {
	i := 0
	for ; nbits >= 8; nbits -= 8 {
		crc = (crc<<8)&0x3ff ^ crc10Table[byte(crc>>2)^p[i]]
		i++
	}
	for b := 0; b < nbits; b++ {
		bit := (p[i] >> (7 - b)) & 1
		top := (crc >> 9) & 1
		crc = (crc << 1) & 0x3ff
		if top^uint16(bit) != 0 {
			crc ^= crc10Poly & 0x3ff
		}
	}
	return crc
}

// CRC10Fill computes the CRC-10 over all but the final 10 bits of pdu (the
// covered region is not byte-aligned: in an AAL3/4 SAR-PDU the 6-bit LI
// field shares the last two bytes with the CRC) and writes it into those
// final 10 bits. A receiver checking the completed PDU with CRC10Check sees
// it verify.
func CRC10Fill(pdu []byte) {
	if len(pdu) < 2 {
		panic("crc: CRC10Fill needs at least 2 bytes")
	}
	n := len(pdu)
	c := crc10Bits(0, pdu, n*8-10)
	pdu[n-2] = pdu[n-2]&^0x03 | byte(c>>8)
	pdu[n-1] = byte(c)
}

// CRC10Check reports whether a PDU whose trailing 10 bits carry its CRC-10
// (as written by CRC10Fill) verifies.
func CRC10Check(pdu []byte) bool {
	if len(pdu) < 2 {
		return false
	}
	n := len(pdu)
	c := crc10Bits(0, pdu, n*8-10)
	got := uint16(pdu[n-2]&0x03)<<8 | uint16(pdu[n-1])
	return c == got
}

// ---------------------------------------------------------------------------
// CRC-32 (AAL5 CPCS)

// crc32Poly is the IEEE 802.3 polynomial, MSB-first form.
const crc32Poly = 0x04c11db7

var crc32Table [256]uint32

// crc32Slice holds the slicing-by-8 tables: crc32Slice[k][b] is the CRC
// contribution of byte b positioned k+1 bytes before the end of an 8-byte
// block (crc32Slice[0] is the plain byte table). Processing eight input
// bytes then costs eight table loads and XORs instead of eight dependent
// shift-and-lookup steps — the classic Intel slicing-by-8 scheme, here in
// the MSB-first (non-reflected) form I.363's AAL5 CRC uses.
var crc32Slice [8][256]uint32

func init() {
	for i := 0; i < 256; i++ {
		crc := uint32(i) << 24
		for b := 0; b < 8; b++ {
			if crc&0x8000_0000 != 0 {
				crc = crc<<1 ^ crc32Poly
			} else {
				crc <<= 1
			}
		}
		crc32Table[i] = crc
	}
	crc32Slice[0] = crc32Table
	for k := 1; k < 8; k++ {
		for i := 0; i < 256; i++ {
			prev := crc32Slice[k-1][i]
			crc32Slice[k][i] = prev<<8 ^ crc32Table[byte(prev>>24)]
		}
	}
}

// CRC32 computes the AAL5 CPCS CRC: register preset to all ones, MSB-first,
// result complemented.
func CRC32(p []byte) uint32 {
	return CRC32Update(0xffff_ffff, p) ^ 0xffff_ffff
}

// CRC32Update advances a running (uncomplemented) CRC register over p.
// Start from 0xffffffff; complement the final value to get the transmitted
// CRC. This form lets the segmenter fold the check in cell-sized pieces, as
// the hardware does. Blocks of eight bytes go through the slicing-by-8
// tables; the remainder falls back to the byte table. The tests pin both
// paths against the bit-serial reference.
func CRC32Update(crc uint32, p []byte) uint32 {
	for len(p) >= 8 {
		crc ^= uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3])
		crc = crc32Slice[7][byte(crc>>24)] ^
			crc32Slice[6][byte(crc>>16)] ^
			crc32Slice[5][byte(crc>>8)] ^
			crc32Slice[4][byte(crc)] ^
			crc32Slice[3][p[4]] ^
			crc32Slice[2][p[5]] ^
			crc32Slice[1][p[6]] ^
			crc32Slice[0][p[7]]
		p = p[8:]
	}
	for _, b := range p {
		crc = crc<<8 ^ crc32Table[byte(crc>>24)^b]
	}
	return crc
}

// CRC32Bitwise is the reference bit-serial AAL5 CRC.
func CRC32Bitwise(p []byte) uint32 {
	crc := uint32(0xffff_ffff)
	for _, by := range p {
		for b := 0; b < 8; b++ {
			bit := uint32(by>>(7-b)) & 1
			top := crc >> 31
			crc <<= 1
			if top^bit != 0 {
				crc ^= crc32Poly
			}
		}
	}
	return crc ^ 0xffff_ffff
}
