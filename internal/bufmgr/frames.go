package bufmgr

// ---------------------------------------------------------------------------
// Linked list of per-cell nodes.

// linkedNodeBytes is payload + next pointer + flags, the SRAM a node pins.
const linkedNodeBytes = CellPayload + 4

type linkedNode struct {
	payload [CellPayload]byte
	next    *linkedNode
}

type linkedFrame struct {
	alloc      *Allocator
	head, tail *linkedNode
	n          int
	maxCells   int
	overhead   int
}

func newLinkedFrame(a *Allocator, maxCells int) (Frame, error) {
	ov := FrameOverheadBytes(Linked, maxCells)
	if err := a.reserve(ov); err != nil {
		return nil, err
	}
	return &linkedFrame{alloc: a, maxCells: maxCells, overhead: ov}, nil
}

func (f *linkedFrame) Append(p []byte) (int, error) {
	if f.n == f.maxCells {
		return 0, ErrFrameFull
	}
	if err := f.alloc.reserve(linkedNodeBytes); err != nil {
		return 0, err
	}
	node := &linkedNode{}
	copy(node.payload[:], p)
	if f.tail == nil {
		f.head, f.tail = node, node
	} else {
		f.tail.next = node
		f.tail = node
	}
	f.n++
	return linkedAppendCycles, nil
}

func (f *linkedFrame) Cell(i int) ([]byte, int, error) {
	if i < 0 || i >= f.n {
		return nil, 0, ErrBadIndex
	}
	node := f.head
	for j := 0; j < i; j++ {
		node = node.next
	}
	return node.payload[:], linkedWalkCycles * (i + 1), nil
}

func (f *linkedFrame) Cells() int { return f.n }

func (f *linkedFrame) LocalBytes() int { return f.overhead + f.n*linkedNodeBytes }

func (f *linkedFrame) HostBytes() int { return 0 }

func (f *linkedFrame) Release() {
	f.alloc.release(f.LocalBytes())
	f.head, f.tail, f.n = nil, nil, 0
	f.overhead = 0
}

// ---------------------------------------------------------------------------
// Contiguous maximal block per frame.

type contigFrame struct {
	alloc    *Allocator
	buf      []byte
	n        int
	maxCells int
	overhead int
}

func newContigFrame(a *Allocator, maxCells int) (Frame, error) {
	ov := FrameOverheadBytes(Contig, maxCells)
	total := ov + maxCells*CellPayload
	if err := a.reserve(total); err != nil {
		return nil, err
	}
	return &contigFrame{alloc: a, buf: make([]byte, maxCells*CellPayload),
		maxCells: maxCells, overhead: ov}, nil
}

func (f *contigFrame) Append(p []byte) (int, error) {
	if f.n == f.maxCells {
		return 0, ErrFrameFull
	}
	copy(f.buf[f.n*CellPayload:], p)
	f.n++
	return contigAppendCycles, nil
}

func (f *contigFrame) Cell(i int) ([]byte, int, error) {
	if i < 0 || i >= f.n {
		return nil, 0, ErrBadIndex
	}
	return f.buf[i*CellPayload : (i+1)*CellPayload], contigAccessCycles, nil
}

func (f *contigFrame) Cells() int { return f.n }

// LocalBytes: the whole reservation is pinned for the frame's lifetime —
// that is the strategy's defining cost.
func (f *contigFrame) LocalBytes() int { return f.overhead + f.maxCells*CellPayload }

func (f *contigFrame) HostBytes() int { return 0 }

func (f *contigFrame) Release() {
	f.alloc.release(f.LocalBytes())
	f.buf, f.n, f.maxCells, f.overhead = nil, 0, 0, 0
}

// ---------------------------------------------------------------------------
// Paged containers.

const pageBytes = PageCells*CellPayload + 4 // payload slots + valid bitmap word

type pagedFrame struct {
	alloc    *Allocator
	pages    [][]byte
	n        int
	maxCells int
	overhead int
}

func newPagedFrame(a *Allocator, maxCells int) (Frame, error) {
	ov := FrameOverheadBytes(Paged, maxCells)
	if err := a.reserve(ov); err != nil {
		return nil, err
	}
	return &pagedFrame{alloc: a, maxCells: maxCells, overhead: ov}, nil
}

func (f *pagedFrame) Append(p []byte) (int, error) {
	if f.n == f.maxCells {
		return 0, ErrFrameFull
	}
	cycles := pagedAppendCycles
	page := f.n / PageCells
	if page == len(f.pages) {
		if err := f.alloc.reserve(pageBytes); err != nil {
			return 0, err
		}
		f.pages = append(f.pages, make([]byte, PageCells*CellPayload))
		cycles += pagedNewPageCycles
	}
	off := (f.n % PageCells) * CellPayload
	copy(f.pages[page][off:], p)
	f.n++
	return cycles, nil
}

func (f *pagedFrame) Cell(i int) ([]byte, int, error) {
	if i < 0 || i >= f.n {
		return nil, 0, ErrBadIndex
	}
	page, off := i/PageCells, (i%PageCells)*CellPayload
	return f.pages[page][off : off+CellPayload], pagedAccessCycles, nil
}

func (f *pagedFrame) Cells() int { return f.n }

func (f *pagedFrame) LocalBytes() int { return f.overhead + len(f.pages)*pageBytes }

func (f *pagedFrame) HostBytes() int { return 0 }

func (f *pagedFrame) Release() {
	f.alloc.release(f.LocalBytes())
	f.pages, f.n, f.overhead = nil, 0, 0
}

// ---------------------------------------------------------------------------
// Host memory: payload leaves the adapter immediately.

type hostFrame struct {
	alloc    *Allocator
	buf      []byte // models the host-resident buffer
	n        int
	maxCells int
	overhead int
}

func newHostFrame(a *Allocator, maxCells int) (Frame, error) {
	ov := FrameOverheadBytes(HostMem, maxCells)
	if err := a.reserve(ov); err != nil {
		return nil, err
	}
	return &hostFrame{alloc: a, buf: make([]byte, maxCells*CellPayload),
		maxCells: maxCells, overhead: ov}, nil
}

func (f *hostFrame) Append(p []byte) (int, error) {
	if f.n == f.maxCells {
		return 0, ErrFrameFull
	}
	copy(f.buf[f.n*CellPayload:], p)
	f.n++
	// Engine cost only; the DMA bus time is charged by the caller, which
	// knows the bus. That separation keeps this a pure engine-cycle model.
	return hostAppendCycles + hostLocalBookkeep, nil
}

func (f *hostFrame) Cell(i int) ([]byte, int, error) {
	if i < 0 || i >= f.n {
		return nil, 0, ErrBadIndex
	}
	// Random access from the engine would cross the bus; charge the
	// engine-side cost. (E7 footnotes that HostMem random access is
	// effectively unavailable to the engine — reflected as a high cost.)
	return f.buf[i*CellPayload : (i+1)*CellPayload], 40, nil
}

func (f *hostFrame) Cells() int { return f.n }

func (f *hostFrame) LocalBytes() int { return f.overhead }

func (f *hostFrame) HostBytes() int { return f.n * CellPayload }

func (f *hostFrame) Release() {
	f.alloc.release(f.overhead)
	f.buf, f.n, f.overhead = nil, 0, 0
}
