package bufmgr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func cellPattern(i int) []byte {
	p := make([]byte, CellPayload)
	for j := range p {
		p[j] = byte(i*53 + j)
	}
	return p
}

func TestAppendAndReadBackAllOrganizations(t *testing.T) {
	for _, org := range Organizations() {
		a := NewAllocator(org, 0)
		f, err := a.NewFrame(100)
		if err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		for i := 0; i < 100; i++ {
			cycles, err := f.Append(cellPattern(i))
			if err != nil {
				t.Fatalf("%v: append %d: %v", org, i, err)
			}
			if cycles <= 0 {
				t.Fatalf("%v: free append", org)
			}
		}
		if f.Cells() != 100 {
			t.Fatalf("%v: Cells = %d", org, f.Cells())
		}
		for i := 0; i < 100; i++ {
			p, cycles, err := f.Cell(i)
			if err != nil {
				t.Fatalf("%v: cell %d: %v", org, i, err)
			}
			if !bytes.Equal(p, cellPattern(i)) {
				t.Fatalf("%v: cell %d corrupted", org, i)
			}
			if cycles <= 0 {
				t.Fatalf("%v: free random access", org)
			}
		}
		f.Release()
		if a.Used() != 0 {
			t.Fatalf("%v: %d bytes leaked after release", org, a.Used())
		}
	}
}

func TestFrameFullRejected(t *testing.T) {
	for _, org := range Organizations() {
		a := NewAllocator(org, 0)
		f, _ := a.NewFrame(2)
		f.Append(cellPattern(0))
		f.Append(cellPattern(1))
		if _, err := f.Append(cellPattern(2)); !errors.Is(err, ErrFrameFull) {
			t.Fatalf("%v: err = %v, want ErrFrameFull", org, err)
		}
	}
}

func TestBadIndexRejected(t *testing.T) {
	for _, org := range Organizations() {
		a := NewAllocator(org, 0)
		f, _ := a.NewFrame(4)
		f.Append(cellPattern(0))
		for _, i := range []int{-1, 1, 4} {
			if _, _, err := f.Cell(i); !errors.Is(err, ErrBadIndex) {
				t.Fatalf("%v: Cell(%d) err = %v", org, i, err)
			}
		}
	}
}

func TestContigPinsFullReservation(t *testing.T) {
	a := NewAllocator(Contig, 0)
	f, _ := a.NewFrame(1366)
	// Before any cell arrives, the whole worst-case frame is pinned.
	if f.LocalBytes() < 1366*CellPayload {
		t.Fatalf("contig pinned only %d bytes", f.LocalBytes())
	}
	before := a.Used()
	f.Append(cellPattern(0))
	if a.Used() != before {
		t.Fatal("contig reservation grew on append")
	}
}

func TestLinkedGrowsPerCell(t *testing.T) {
	a := NewAllocator(Linked, 0)
	f, _ := a.NewFrame(1366)
	base := f.LocalBytes()
	f.Append(cellPattern(0))
	if f.LocalBytes() != base+linkedNodeBytes {
		t.Fatalf("linked grew by %d, want %d", f.LocalBytes()-base, linkedNodeBytes)
	}
}

func TestPagedGrowsPerPage(t *testing.T) {
	a := NewAllocator(Paged, 0)
	f, _ := a.NewFrame(1366)
	base := f.LocalBytes()
	for i := 0; i < PageCells; i++ {
		f.Append(cellPattern(i))
	}
	if f.LocalBytes() != base+pageBytes {
		t.Fatalf("one page of cells grew %d, want %d", f.LocalBytes()-base, pageBytes)
	}
	f.Append(cellPattern(PageCells))
	if f.LocalBytes() != base+2*pageBytes {
		t.Fatal("second page not allocated on boundary crossing")
	}
}

func TestHostMemLocalFootprintConstant(t *testing.T) {
	a := NewAllocator(HostMem, 0)
	f, _ := a.NewFrame(1366)
	base := f.LocalBytes()
	for i := 0; i < 200; i++ {
		f.Append(cellPattern(i))
	}
	if f.LocalBytes() != base {
		t.Fatal("hostmem local footprint grew with cells")
	}
	if f.HostBytes() != 200*CellPayload {
		t.Fatalf("HostBytes = %d", f.HostBytes())
	}
}

func TestMemoryShapeE7(t *testing.T) {
	// The E7 ordering for a small (2-cell) frame on a 1366-cell-capable
	// VC: hostmem < linked < paged << contig local memory.
	use := func(org Organization) int {
		a := NewAllocator(org, 0)
		f, _ := a.NewFrame(1366)
		f.Append(cellPattern(0))
		f.Append(cellPattern(1))
		return f.LocalBytes()
	}
	h, l, p, c := use(HostMem), use(Linked), use(Paged), use(Contig)
	if !(l < p && p < c && h < p) {
		t.Fatalf("small-frame memory ordering broken: host %d, linked %d, paged %d, contig %d", h, l, p, c)
	}
	// For a full-size frame, linked overtakes contig (pointer tax).
	useFull := func(org Organization) int {
		a := NewAllocator(org, 0)
		f, _ := a.NewFrame(1366)
		for i := 0; i < 1366; i++ {
			f.Append(cellPattern(i))
		}
		return f.LocalBytes()
	}
	if useFull(Linked) <= useFull(Contig) {
		t.Fatal("full-frame: linked should exceed contig (per-cell pointer overhead)")
	}
	// HostMem's local footprint is constant regardless of frame size —
	// its defining property for end systems.
	if useFull(HostMem) != h {
		t.Fatal("hostmem local footprint varied with frame size")
	}
}

func TestRandomAccessCostShape(t *testing.T) {
	// Linked random access grows with index; contig and paged are flat.
	a := NewAllocator(Linked, 0)
	f, _ := a.NewFrame(512)
	for i := 0; i < 512; i++ {
		f.Append(cellPattern(i))
	}
	_, cFirst, _ := f.Cell(0)
	_, cLast, _ := f.Cell(511)
	if cLast <= cFirst {
		t.Fatal("linked random access cost did not grow")
	}
	for _, org := range []Organization{Contig, Paged} {
		a := NewAllocator(org, 0)
		f, _ := a.NewFrame(512)
		for i := 0; i < 512; i++ {
			f.Append(cellPattern(i))
		}
		_, c0, _ := f.Cell(0)
		_, c511, _ := f.Cell(511)
		if c0 != c511 {
			t.Fatalf("%v: random access not constant time", org)
		}
	}
}

func TestAllocatorBudgetEnforced(t *testing.T) {
	// Budget fits the frame overhead plus a few linked nodes only.
	a := NewAllocator(Linked, FrameOverheadBytes(Linked, 100)+3*linkedNodeBytes)
	f, err := a.NewFrame(100)
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := 0; i < 10; i++ {
		if _, err := f.Append(cellPattern(i)); err != nil {
			sawErr = err
			break
		}
	}
	if !errors.Is(sawErr, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", sawErr)
	}
}

func TestAllocatorPeakTracksHighWater(t *testing.T) {
	a := NewAllocator(Linked, 0)
	f, _ := a.NewFrame(10)
	for i := 0; i < 10; i++ {
		f.Append(cellPattern(i))
	}
	peak := a.Peak()
	f.Release()
	if a.Used() != 0 {
		t.Fatal("release leaked")
	}
	if a.Peak() != peak {
		t.Fatal("peak reset by release")
	}
}

func TestConcurrentFramesShareBudget(t *testing.T) {
	a := NewAllocator(Contig, 2*(FrameOverheadBytes(Contig, 10)+10*CellPayload))
	if _, err := a.NewFrame(10); err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewFrame(10); err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewFrame(10); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("third frame err = %v, want ErrNoMemory", err)
	}
}

func TestZeroMaxCellsRejected(t *testing.T) {
	a := NewAllocator(Linked, 0)
	if _, err := a.NewFrame(0); err == nil {
		t.Fatal("NewFrame(0) succeeded")
	}
}

func TestOrganizationString(t *testing.T) {
	want := map[Organization]string{Linked: "linked", Contig: "contig", Paged: "paged", HostMem: "hostmem"}
	for org, s := range want {
		if org.String() != s {
			t.Errorf("%d.String() = %q, want %q", org, org.String(), s)
		}
	}
	if Organization(99).String() != "Organization(99)" {
		t.Error("unknown organization string")
	}
}

// Property: every organization stores and returns identical bytes for any
// cell sequence, and releases exactly what it reserved.
func TestPropertyIntegrityAndAccounting(t *testing.T) {
	f := func(nCells uint8, orgPick uint8) bool {
		n := int(nCells)%200 + 1
		org := Organizations()[int(orgPick)%4]
		a := NewAllocator(org, 0)
		fr, err := a.NewFrame(n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if _, err := fr.Append(cellPattern(i)); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			p, _, err := fr.Cell(i)
			if err != nil || !bytes.Equal(p, cellPattern(i)) {
				return false
			}
		}
		fr.Release()
		return a.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendLinked(b *testing.B)  { benchAppend(b, Linked) }
func BenchmarkAppendContig(b *testing.B)  { benchAppend(b, Contig) }
func BenchmarkAppendPaged(b *testing.B)   { benchAppend(b, Paged) }
func BenchmarkAppendHostMem(b *testing.B) { benchAppend(b, HostMem) }

func benchAppend(b *testing.B, org Organization) {
	a := NewAllocator(org, 0)
	p := cellPattern(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, _ := a.NewFrame(192)
		for j := 0; j < 192; j++ {
			f.Append(p)
		}
		f.Release()
	}
}
