// Package bufmgr implements and costs the reassembly-buffer organizations a
// host interface can use to hold the cells of partially reassembled frames.
//
// The receive engine touches this structure once per cell, so its append
// cost is on the per-cell critical path, while its memory footprint decides
// how many simultaneous VCs a fixed-size adapter SRAM supports.  Experiment
// E7 tabulates both across four organizations:
//
//   - linked: a list node per cell — no per-frame reservation, costly
//     random access (walk), per-cell pointer overhead;
//   - contig: one maximal contiguous block per frame — constant-time
//     everything, massive reservation (a 1366-cell frame's worth per VC);
//   - paged: fixed-size multi-cell containers chained through a page row —
//     constant-time access via the row, reservation in page quanta;
//   - hostmem: control state in adapter SRAM, payload DMA'd straight to
//     host memory — near-zero adapter memory, but every access crosses the
//     bus (the end-system zero-copy organization).
//
// Each strategy is a real store (bytes in, bytes out) plus a cycle ledger,
// so tests can verify integrity and experiments can read costs.
package bufmgr

import (
	"errors"
	"fmt"
)

// CellPayload is the stored unit: one cell's 48 payload bytes.
const CellPayload = 48

// Organization names a buffer strategy.
type Organization uint8

const (
	// DefaultOrg is the zero value: "no preference", resolved to Paged (the
	// board's organization) wherever an Organization is consumed. Holding
	// the zero value keeps option structs embedding an Organization honest —
	// an unset field means the default, and explicitly selecting Linked is
	// distinguishable from leaving the field alone.
	DefaultOrg Organization = iota
	// Linked is a per-cell linked list.
	Linked
	// Contig is one contiguous maximal block per frame.
	Contig
	// Paged is fixed-size containers addressed through a page row.
	Paged
	// HostMem keeps payload in host memory, control locally.
	HostMem
)

// Resolve maps DefaultOrg to the concrete default organization (Paged),
// returning every other value unchanged.
func (o Organization) Resolve() Organization {
	if o == DefaultOrg {
		return Paged
	}
	return o
}

// String implements fmt.Stringer.
func (o Organization) String() string {
	switch o {
	case DefaultOrg:
		return "default"
	case Linked:
		return "linked"
	case Contig:
		return "contig"
	case Paged:
		return "paged"
	case HostMem:
		return "hostmem"
	default:
		return fmt.Sprintf("Organization(%d)", uint8(o))
	}
}

// Organizations lists every strategy, in report order.
func Organizations() []Organization { return []Organization{Linked, Contig, Paged, HostMem} }

// Costs in engine cycles. These are the assembly-level estimates the E7
// table is computed from; see DESIGN.md for the counting conventions.
const (
	linkedAppendCycles = 8 // alloc from free list, store payload ptr, link
	linkedWalkCycles   = 3 // per node traversed on random access

	contigAppendCycles = 3 // indexed store: base + idx*48
	contigAccessCycles = 3

	pagedAppendCycles  = 5 // page-row index, bounds check, store
	pagedNewPageCycles = 9 // allocate container, link into row
	pagedAccessCycles  = 5
	hostAppendCycles   = 4 // build DMA descriptor; bus time charged elsewhere
	hostLocalBookkeep  = 2
)

// PageCells is the container size (cells per page) for the Paged strategy.
const PageCells = 32

// Errors.
var (
	ErrFrameFull = errors.New("bufmgr: frame exceeds allocated cells")
	ErrNoMemory  = errors.New("bufmgr: adapter memory exhausted")
	ErrBadIndex  = errors.New("bufmgr: cell index out of range")
)

// Frame is an in-progress reassembly buffer.
type Frame interface {
	// Append stores the next cell's payload, returning the engine cycles
	// charged.
	Append(payload []byte) (cycles int, err error)
	// Cell returns a stored cell's payload and the cycles the random
	// access cost (retransmission-free reassembly only appends, but EOP
	// processing and host hand-off read back).
	Cell(i int) (payload []byte, cycles int, err error)
	// Cells returns the number of stored cells.
	Cells() int
	// LocalBytes reports adapter-SRAM bytes this frame currently pins.
	LocalBytes() int
	// HostBytes reports host-memory bytes (nonzero only for HostMem).
	HostBytes() int
	// Release returns all memory to the allocator.
	Release()
}

// Allocator is a bounded adapter-SRAM budget shared by all frames of an
// organization instance.
type Allocator struct {
	org      Organization
	capacity int
	used     int
	peak     int
}

// NewAllocator returns an allocator for org with the given adapter SRAM
// budget in bytes (0 = unlimited, for pure cost studies).
func NewAllocator(org Organization, capacityBytes int) *Allocator {
	return &Allocator{org: org.Resolve(), capacity: capacityBytes}
}

// Organization returns the allocator's strategy.
func (a *Allocator) Organization() Organization { return a.org }

// Used returns currently pinned adapter bytes.
func (a *Allocator) Used() int { return a.used }

// Peak returns the high-water mark.
func (a *Allocator) Peak() int { return a.peak }

func (a *Allocator) reserve(n int) error {
	if a.capacity > 0 && a.used+n > a.capacity {
		return ErrNoMemory
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return nil
}

func (a *Allocator) release(n int) {
	a.used -= n
	if a.used < 0 {
		panic("bufmgr: allocator underflow")
	}
}

// NewFrame starts a frame that may grow to maxCells cells.
func (a *Allocator) NewFrame(maxCells int) (Frame, error) {
	if maxCells <= 0 {
		return nil, ErrBadIndex
	}
	switch a.org {
	case Linked:
		return newLinkedFrame(a, maxCells)
	case Contig:
		return newContigFrame(a, maxCells)
	case Paged:
		return newPagedFrame(a, maxCells)
	case HostMem:
		return newHostFrame(a, maxCells)
	default:
		panic("bufmgr: unknown organization")
	}
}

// FrameOverheadBytes returns the per-frame fixed local overhead E7 tabulates
// (descriptor, valid bitmap, window state), matching the implementations.
func FrameOverheadBytes(org Organization, maxCells int) int {
	switch org {
	case Linked:
		return 16 // head/tail pointers, counts
	case Contig:
		return 16 + (maxCells+7)/8 // descriptor + valid bitmap
	case Paged:
		return 16 + 4*((maxCells+PageCells-1)/PageCells) // descriptor + page row
	case HostMem:
		return 24 + (maxCells+7)/8 // descriptor + host addr + valid bitmap
	default:
		return 0
	}
}
