// Package vclookup models the receive path's first per-cell job: mapping
// the 24-bit VPI/VCI in an arriving cell header to the small integer index
// of its reassembly state.
//
// The board did this with a content-addressable memory; the interesting
// design question the paper's analysis raises is what that CAM buys over
// doing the lookup in engine firmware.  Three strategies are modelled, each
// reporting the engine cycles a lookup costs so experiment E6 can plot
// cycles-per-cell against the number of active VCs:
//
//   - CAM: fixed-cost hardware associative match, bounded capacity;
//   - Linear: firmware scan of a connection table (the dumbest firmware);
//   - Hash: firmware open-addressing hash (the realistic firmware).
package vclookup

import (
	"errors"
	"fmt"

	"repro/internal/atm"
)

// Errors returned by Insert.
var (
	ErrFull      = errors.New("vclookup: table full")
	ErrDuplicate = errors.New("vclookup: VC already present")
)

// Strategy is a VC→index map with cycle accounting.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Insert registers a VC and returns its stable index.
	Insert(vc atm.VC) (int, error)
	// Remove deletes a VC; removing an absent VC is a no-op.
	Remove(vc atm.VC)
	// Lookup returns the index for vc and the engine cycles the lookup
	// consumed. ok is false for unknown VCs (the cell will be dropped),
	// which still costs cycles.
	Lookup(vc atm.VC) (idx int, cycles int, ok bool)
	// Len reports the number of registered VCs.
	Len() int
	// Cap reports the maximum table size.
	Cap() int
}

// ---------------------------------------------------------------------------
// CAM

// camCycles is the fixed engine cost to use the CAM: write the key register,
// wait one match cycle, read the index register.
const camCycles = 3

// CAM models a hardware content-addressable memory of fixed capacity.
type CAM struct {
	byVC  map[atm.VC]int
	inUse []bool
}

// NewCAM returns a CAM with the given number of entries (the board-class
// part held 256).
func NewCAM(capacity int) *CAM {
	if capacity <= 0 {
		panic(fmt.Sprintf("vclookup: invalid CAM capacity %d", capacity))
	}
	return &CAM{byVC: make(map[atm.VC]int, capacity), inUse: make([]bool, capacity)}
}

// Name implements Strategy.
func (c *CAM) Name() string { return "cam" }

// Len implements Strategy.
func (c *CAM) Len() int { return len(c.byVC) }

// Cap implements Strategy.
func (c *CAM) Cap() int { return len(c.inUse) }

// Insert implements Strategy.
func (c *CAM) Insert(vc atm.VC) (int, error) {
	if _, dup := c.byVC[vc]; dup {
		return 0, ErrDuplicate
	}
	for i, used := range c.inUse {
		if !used {
			c.inUse[i] = true
			c.byVC[vc] = i
			return i, nil
		}
	}
	return 0, ErrFull
}

// Remove implements Strategy.
func (c *CAM) Remove(vc atm.VC) {
	if i, ok := c.byVC[vc]; ok {
		c.inUse[i] = false
		delete(c.byVC, vc)
	}
}

// Lookup implements Strategy. Hardware match: constant cycles regardless of
// occupancy — the flat line in E6.
func (c *CAM) Lookup(vc atm.VC) (int, int, bool) {
	i, ok := c.byVC[vc]
	return i, camCycles, ok
}

// ---------------------------------------------------------------------------
// Linear table scan

// Per-probe firmware cost: load entry key, compare VPI/VCI packed word,
// conditional branch, increment pointer.
const (
	linearSetupCycles = 2
	linearProbeCycles = 4
)

// Linear is a firmware linear scan over a dense connection table.
type Linear struct {
	entries []linEntry
	cap     int
}

type linEntry struct {
	vc  atm.VC
	idx int
}

// NewLinear returns a linear-scan table.
func NewLinear(capacity int) *Linear {
	if capacity <= 0 {
		panic("vclookup: invalid capacity")
	}
	return &Linear{cap: capacity}
}

// Name implements Strategy.
func (l *Linear) Name() string { return "linear" }

// Len implements Strategy.
func (l *Linear) Len() int { return len(l.entries) }

// Cap implements Strategy.
func (l *Linear) Cap() int { return l.cap }

// Insert implements Strategy.
func (l *Linear) Insert(vc atm.VC) (int, error) {
	for _, e := range l.entries {
		if e.vc == vc {
			return 0, ErrDuplicate
		}
	}
	if len(l.entries) == l.cap {
		return 0, ErrFull
	}
	idx := len(l.entries)
	l.entries = append(l.entries, linEntry{vc: vc, idx: idx})
	return idx, nil
}

// Remove implements Strategy. Indices of other entries are preserved (the
// reassembly state they point at must not move).
func (l *Linear) Remove(vc atm.VC) {
	for i, e := range l.entries {
		if e.vc == vc {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return
		}
	}
}

// Lookup implements Strategy: cost grows with the entry's position, and a
// miss pays for scanning the whole table — the linearly rising curve in E6.
func (l *Linear) Lookup(vc atm.VC) (int, int, bool) {
	for i, e := range l.entries {
		if e.vc == vc {
			return e.idx, linearSetupCycles + (i+1)*linearProbeCycles, true
		}
	}
	return 0, linearSetupCycles + len(l.entries)*linearProbeCycles, false
}

// ---------------------------------------------------------------------------
// Open-addressing hash

// Firmware hash cost: compute hash (shift/xor/mask ≈ 6 instructions), then
// per probe: load, compare, branch.
const (
	hashSetupCycles = 6
	hashProbeCycles = 4
)

// Hash is firmware open-addressing (linear probing) into a power-of-two
// table kept at most half full so probe chains stay short.
type Hash struct {
	slots   []hashSlot
	mask    uint32
	n       int
	maxLoad int
	nextIdx int
	freeIdx []int
}

type hashSlot struct {
	vc    atm.VC
	idx   int
	state uint8 // 0 empty, 1 used, 2 tombstone
}

// NewHash returns a hash table that accepts up to capacity VCs.
func NewHash(capacity int) *Hash {
	if capacity <= 0 {
		panic("vclookup: invalid capacity")
	}
	// Table size: next power of two >= 2*capacity.
	size := 1
	for size < 2*capacity {
		size <<= 1
	}
	return &Hash{slots: make([]hashSlot, size), mask: uint32(size - 1), maxLoad: capacity}
}

// Name implements Strategy.
func (h *Hash) Name() string { return "hash" }

// Len implements Strategy.
func (h *Hash) Len() int { return h.n }

// Cap implements Strategy.
func (h *Hash) Cap() int { return h.maxLoad }

func hashVC(vc atm.VC) uint32 {
	x := uint32(vc.VPI)<<16 | uint32(vc.VCI)
	// Cheap avalanche the engine could do in ~6 instructions.
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	return x
}

// Insert implements Strategy.
func (h *Hash) Insert(vc atm.VC) (int, error) {
	if h.n == h.maxLoad {
		return 0, ErrFull
	}
	pos := hashVC(vc) & h.mask
	firstFree := -1
	for {
		s := &h.slots[pos]
		switch s.state {
		case 0:
			if firstFree >= 0 {
				s = &h.slots[firstFree]
			}
			idx := h.allocIdx()
			*s = hashSlot{vc: vc, idx: idx, state: 1}
			h.n++
			return idx, nil
		case 2:
			if firstFree < 0 {
				firstFree = int(pos)
			}
		case 1:
			if s.vc == vc {
				return 0, ErrDuplicate
			}
		}
		pos = (pos + 1) & h.mask
	}
}

func (h *Hash) allocIdx() int {
	if n := len(h.freeIdx); n > 0 {
		idx := h.freeIdx[n-1]
		h.freeIdx = h.freeIdx[:n-1]
		return idx
	}
	idx := h.nextIdx
	h.nextIdx++
	return idx
}

// Remove implements Strategy.
func (h *Hash) Remove(vc atm.VC) {
	pos := hashVC(vc) & h.mask
	for {
		s := &h.slots[pos]
		switch s.state {
		case 0:
			return
		case 1:
			if s.vc == vc {
				h.freeIdx = append(h.freeIdx, s.idx)
				s.state = 2
				h.n--
				return
			}
		}
		pos = (pos + 1) & h.mask
	}
}

// Lookup implements Strategy: setup plus one probe per slot inspected.
func (h *Hash) Lookup(vc atm.VC) (int, int, bool) {
	pos := hashVC(vc) & h.mask
	probes := 0
	for {
		probes++
		s := &h.slots[pos]
		switch s.state {
		case 0:
			return 0, hashSetupCycles + probes*hashProbeCycles, false
		case 1:
			if s.vc == vc {
				return s.idx, hashSetupCycles + probes*hashProbeCycles, true
			}
		}
		pos = (pos + 1) & h.mask
	}
}
