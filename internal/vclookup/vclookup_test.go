package vclookup

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/atm"
)

func strategies(cap int) []Strategy {
	return []Strategy{NewCAM(cap), NewLinear(cap), NewHash(cap)}
}

func vcN(i int) atm.VC { return atm.VC{VPI: uint16(i >> 8), VCI: uint16(i*7 + 1)} }

func TestInsertLookupAllStrategies(t *testing.T) {
	for _, s := range strategies(64) {
		idx := make(map[atm.VC]int)
		for i := 0; i < 64; i++ {
			vc := vcN(i)
			id, err := s.Insert(vc)
			if err != nil {
				t.Fatalf("%s: insert %v: %v", s.Name(), vc, err)
			}
			idx[vc] = id
		}
		if s.Len() != 64 {
			t.Fatalf("%s: Len = %d", s.Name(), s.Len())
		}
		for vc, want := range idx {
			got, cycles, ok := s.Lookup(vc)
			if !ok || got != want {
				t.Fatalf("%s: lookup %v = %d,%v, want %d", s.Name(), vc, got, ok, want)
			}
			if cycles <= 0 {
				t.Fatalf("%s: free lookup", s.Name())
			}
		}
	}
}

func TestIndicesDistinct(t *testing.T) {
	for _, s := range strategies(32) {
		seen := map[int]bool{}
		for i := 0; i < 32; i++ {
			id, err := s.Insert(vcN(i))
			if err != nil {
				t.Fatal(err)
			}
			if seen[id] {
				t.Fatalf("%s: duplicate index %d", s.Name(), id)
			}
			seen[id] = true
		}
	}
}

func TestMissReported(t *testing.T) {
	for _, s := range strategies(8) {
		s.Insert(vcN(0))
		_, cycles, ok := s.Lookup(atm.VC{VPI: 99, VCI: 9999})
		if ok {
			t.Fatalf("%s: phantom hit", s.Name())
		}
		if cycles <= 0 {
			t.Fatalf("%s: miss cost zero cycles", s.Name())
		}
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	for _, s := range strategies(8) {
		s.Insert(vcN(1))
		if _, err := s.Insert(vcN(1)); !errors.Is(err, ErrDuplicate) {
			t.Fatalf("%s: err = %v, want ErrDuplicate", s.Name(), err)
		}
	}
}

func TestCapacityEnforced(t *testing.T) {
	for _, s := range strategies(4) {
		for i := 0; i < 4; i++ {
			if _, err := s.Insert(vcN(i)); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
		}
		if _, err := s.Insert(vcN(99)); !errors.Is(err, ErrFull) {
			t.Fatalf("%s: err = %v, want ErrFull", s.Name(), err)
		}
		if s.Cap() != 4 {
			t.Fatalf("%s: Cap = %d", s.Name(), s.Cap())
		}
	}
}

func TestRemoveThenReuse(t *testing.T) {
	for _, s := range strategies(4) {
		for i := 0; i < 4; i++ {
			s.Insert(vcN(i))
		}
		s.Remove(vcN(2))
		if s.Len() != 3 {
			t.Fatalf("%s: Len after remove = %d", s.Name(), s.Len())
		}
		if _, _, ok := s.Lookup(vcN(2)); ok {
			t.Fatalf("%s: removed VC still found", s.Name())
		}
		// Others undisturbed.
		for _, i := range []int{0, 1, 3} {
			if _, _, ok := s.Lookup(vcN(i)); !ok {
				t.Fatalf("%s: VC %d lost after unrelated remove", s.Name(), i)
			}
		}
		// Space freed.
		if _, err := s.Insert(vcN(50)); err != nil {
			t.Fatalf("%s: reinsert after remove: %v", s.Name(), err)
		}
	}
}

func TestRemoveAbsentIsNoOp(t *testing.T) {
	for _, s := range strategies(4) {
		s.Insert(vcN(0))
		s.Remove(vcN(42)) // must not panic or disturb
		if _, _, ok := s.Lookup(vcN(0)); !ok {
			t.Fatalf("%s: remove of absent VC disturbed table", s.Name())
		}
	}
}

func TestCAMCostFlat(t *testing.T) {
	c := NewCAM(256)
	c.Insert(vcN(0))
	_, c1, _ := c.Lookup(vcN(0))
	for i := 1; i < 256; i++ {
		c.Insert(vcN(i))
	}
	_, c2, _ := c.Lookup(vcN(255))
	if c1 != c2 {
		t.Fatalf("CAM cost varies with occupancy: %d vs %d", c1, c2)
	}
}

func TestLinearCostGrows(t *testing.T) {
	l := NewLinear(256)
	for i := 0; i < 256; i++ {
		l.Insert(vcN(i))
	}
	_, first, _ := l.Lookup(vcN(0))
	_, last, _ := l.Lookup(vcN(255))
	if last <= first {
		t.Fatalf("linear cost did not grow: first %d, last %d", first, last)
	}
	if last < 256*linearProbeCycles {
		t.Fatalf("deep lookup cost %d implausibly low", last)
	}
}

func TestHashCostBounded(t *testing.T) {
	h := NewHash(256)
	for i := 0; i < 256; i++ {
		h.Insert(vcN(i))
	}
	worst := 0
	for i := 0; i < 256; i++ {
		_, c, ok := h.Lookup(vcN(i))
		if !ok {
			t.Fatal("inserted VC missing")
		}
		if c > worst {
			worst = c
		}
	}
	// Half-loaded linear probing: expected probe chains are short. Allow
	// a generous bound that still separates hash from linear scan.
	if worst > hashSetupCycles+16*hashProbeCycles {
		t.Fatalf("worst hash lookup %d cycles; table degenerated", worst)
	}
}

func TestOrderingCAMvsHashvsLinear(t *testing.T) {
	// The E6 shape at high occupancy: cam < hash < linear (average cost).
	n := 512
	cam, hash, lin := NewCAM(n), NewHash(n), NewLinear(n)
	for i := 0; i < n; i++ {
		cam.Insert(vcN(i))
		hash.Insert(vcN(i))
		lin.Insert(vcN(i))
	}
	avg := func(s Strategy) float64 {
		total := 0
		for i := 0; i < n; i++ {
			_, c, _ := s.Lookup(vcN(i))
			total += c
		}
		return float64(total) / float64(n)
	}
	aCam, aHash, aLin := avg(cam), avg(hash), avg(lin)
	if !(aCam < aHash && aHash < aLin) {
		t.Fatalf("cost ordering broken: cam %.1f, hash %.1f, linear %.1f", aCam, aHash, aLin)
	}
}

func TestHashTombstoneChains(t *testing.T) {
	// Insert colliding entries, remove one mid-chain, and verify the rest
	// remain reachable (tombstones must not break probing).
	h := NewHash(16)
	var vcs []atm.VC
	for i := 0; i < 16; i++ {
		vc := vcN(i)
		vcs = append(vcs, vc)
		h.Insert(vc)
	}
	h.Remove(vcs[5])
	h.Remove(vcs[11])
	for i, vc := range vcs {
		_, _, ok := h.Lookup(vc)
		want := i != 5 && i != 11
		if ok != want {
			t.Fatalf("vc %d: found=%v, want %v", i, ok, want)
		}
	}
	// Tombstoned slots are reused.
	if _, err := h.Insert(vcN(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert(vcN(101)); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"cam":    func() { NewCAM(0) },
		"linear": func() { NewLinear(0) },
		"hash":   func() { NewHash(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: zero capacity did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: all three strategies agree with a map model under a random
// insert/remove/lookup workload.
func TestPropertyStrategiesMatchMapModel(t *testing.T) {
	type op struct {
		Insert bool
		Key    uint8
	}
	f := func(ops []op) bool {
		ss := strategies(64)
		models := []map[atm.VC]int{{}, {}, {}}
		for _, o := range ops {
			vc := vcN(int(o.Key) % 80)
			for i, s := range ss {
				m := models[i]
				if o.Insert {
					id, err := s.Insert(vc)
					_, dup := m[vc]
					switch {
					case dup && !errors.Is(err, ErrDuplicate):
						return false
					case !dup && len(m) >= 64 && !errors.Is(err, ErrFull):
						return false
					case !dup && len(m) < 64:
						if err != nil {
							return false
						}
						m[vc] = id
					}
				} else {
					s.Remove(vc)
					delete(m, vc)
				}
				got, _, ok := s.Lookup(vc)
				want, present := m[vc]
				if ok != present || (ok && got != want) {
					return false
				}
				if s.Len() != len(m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSixtyFourKEntries is city-scale coverage (ROADMAP item 3): CAM and
// hash agree with a map model at 65536 registered VCs — full insert,
// strided removal, reinsertion, and miss reporting. Linear scan is excluded:
// its duplicate check makes 64k inserts quadratic, and E6 already shows the
// firmware scan is hopeless far below this point.
func TestSixtyFourKEntries(t *testing.T) {
	const n = 1 << 16
	for _, s := range []Strategy{NewCAM(n), NewHash(n)} {
		idx := make(map[atm.VC]int, n)
		for i := 0; i < n; i++ {
			vc := vcN(i)
			id, err := s.Insert(vc)
			if err != nil {
				t.Fatalf("%s: insert %d (%v): %v", s.Name(), i, vc, err)
			}
			idx[vc] = id
		}
		if s.Len() != n {
			t.Fatalf("%s: Len = %d, want %d", s.Name(), s.Len(), n)
		}
		if _, err := s.Insert(atm.VC{VPI: 4096, VCI: 1}); !errors.Is(err, ErrFull) {
			t.Fatalf("%s: insert past 64k: err = %v, want ErrFull", s.Name(), err)
		}
		for i := 0; i < n; i++ {
			vc := vcN(i)
			got, cycles, ok := s.Lookup(vc)
			if !ok || got != idx[vc] {
				t.Fatalf("%s: lookup %d = (%d, %v), want %d", s.Name(), i, got, ok, idx[vc])
			}
			if cycles <= 0 {
				t.Fatalf("%s: free lookup at %d", s.Name(), i)
			}
		}
		// Remove every 17th entry, then verify holes and survivors.
		for i := 0; i < n; i += 17 {
			s.Remove(vcN(i))
		}
		for i := 0; i < n; i++ {
			_, _, ok := s.Lookup(vcN(i))
			if want := i%17 != 0; ok != want {
				t.Fatalf("%s: after removal, lookup %d = %v, want %v", s.Name(), i, ok, want)
			}
		}
		// Freed capacity is reusable and reinserts resolve again.
		for i := 0; i < n; i += 17 {
			if _, err := s.Insert(vcN(i)); err != nil {
				t.Fatalf("%s: reinsert %d: %v", s.Name(), i, err)
			}
		}
		if s.Len() != n {
			t.Fatalf("%s: Len after reinsert = %d, want %d", s.Name(), s.Len(), n)
		}
	}
}

// TestHashCostBounded64k pins that the hash stays half-loaded and its probe
// chains stay short even at city-scale occupancy — the property that lets
// firmware survive without a 64k-entry CAM part.
func TestHashCostBounded64k(t *testing.T) {
	const n = 1 << 16
	h := NewHash(n)
	for i := 0; i < n; i++ {
		if _, err := h.Insert(vcN(i)); err != nil {
			t.Fatal(err)
		}
	}
	worst, total := 0, 0
	for i := 0; i < n; i++ {
		_, c, ok := h.Lookup(vcN(i))
		if !ok {
			t.Fatalf("inserted VC %d missing", i)
		}
		total += c
		if c > worst {
			worst = c
		}
	}
	if worst > hashSetupCycles+64*hashProbeCycles {
		t.Fatalf("worst lookup %d cycles at 64k; table degenerated", worst)
	}
	if avg := float64(total) / n; avg > hashSetupCycles+4*hashProbeCycles {
		t.Fatalf("average lookup %.1f cycles at 64k; load factor broken", avg)
	}
}

// BenchmarkLookup64k measures real wall-clock Lookup cost at 65536 active
// VCs for the two strategies that scale there, and reports each strategy's
// modelled engine cycles so BENCH.json records both axes.
func BenchmarkLookup64k(b *testing.B) {
	const n = 1 << 16
	for _, s := range []Strategy{NewCAM(n), NewHash(n)} {
		for i := 0; i < n; i++ {
			if _, err := s.Insert(vcN(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(s.Name(), func(b *testing.B) {
			totalCycles := 0
			for i := 0; i < b.N; i++ {
				_, cycles, ok := s.Lookup(vcN(i & (n - 1)))
				if !ok {
					b.Fatal("miss")
				}
				totalCycles += cycles
			}
			b.ReportMetric(float64(totalCycles)/float64(b.N), "engine-cycles")
		})
	}
}
