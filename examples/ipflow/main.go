// Ipflow: a realistic IP datagram mix (bimodal: mostly small packets, bytes
// mostly in MTU-size ones) offered to three receive architectures, with the
// receive host also trying to run an "application". Prints how much CPU the
// application actually gets — the paper's core argument made visible.
//
//	go run ./examples/ipflow
package main

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/baseline"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	runTime  = 50 * sim.Millisecond
	appSlice = 500 // instructions per application work item
)

func main() {
	fmt.Println("bimodal IP mix at ~8 Mb/s offered; receive host also runs an application")
	fmt.Printf("\n%-22s %10s %10s %12s %14s\n",
		"architecture", "pkts rx", "host util", "interrupts", "app work done")

	for _, arch := range []string{"per-packet (paper)", "hardwired", "per-cell baseline"} {
		pkts, util, irqs, appDone := run(arch)
		fmt.Printf("%-22s %10d %9.1f%% %12d %14d\n", arch, pkts, 100*util, irqs, appDone)
	}
	fmt.Println("\nthe per-cell adapter starves the application; the paper's interface does not.")
}

func run(arch string) (pkts uint64, util float64, irqs uint64, appDone int) {
	k := sim.NewKernel()
	vc := atm.VC{VCI: 100}
	// Mean packet 2.8 KB every 2.8 ms ≈ 8 Mb/s — modest on purpose: even
	// this trickle monopolizes a per-cell-interrupt host.
	gen := workload.NewBimodalIP(7, 2800*sim.Microsecond)
	deadline := sim.Time(runTime)

	type rxSide interface {
		hostUtil() float64
		interrupts() uint64
		packets() uint64
	}

	var side rxSide
	var appHost interface {
		Work(string, int, func()) sim.Time
	}

	switch arch {
	case "per-cell baseline":
		tx := netsim.NewBaselineStation(k, "tx", baseline.DefaultConfig())
		rx := netsim.NewBaselineStation(k, "rx", baseline.DefaultConfig())
		netsim.ConnectBaseline(k, tx, rx, netsim.LinkConfig{Delay: 10_000, Seed: 5})
		rx.Adapter.OpenVC(vc)
		drive(k, deadline, gen, func(sz int) { tx.Adapter.Send(vc, make([]byte, sz), nil) })
		side = baselineSide{rx}
		appHost = rx.Host
	default:
		mk := netsim.NewStation
		if arch == "hardwired" {
			mk = netsim.NewHardwiredStation
		}
		cfgTx, cfgRx := nic.DefaultConfig("tx"), nic.DefaultConfig("rx")
		tx, err := mk(k, cfgTx)
		if err != nil {
			panic(err)
		}
		rx, err := mk(k, cfgRx)
		if err != nil {
			panic(err)
		}
		netsim.Connect(k, tx, rx, netsim.LinkConfig{Delay: 10_000, Seed: 5})
		tx.Iface.OpenVC(vc)
		rx.Iface.OpenVC(vc)
		drive(k, deadline, gen, func(sz int) { tx.Iface.Send(vc, make([]byte, sz), nil) })
		side = nicSide{rx}
		appHost = rx.Host
	}

	// The application: a chain of fixed work items competing with the
	// network for the receive host's CPU.
	var appLoop func()
	appLoop = func() {
		if k.Now() > deadline {
			return
		}
		appHost.Work("app", appSlice, func() {
			appDone++
			appLoop()
		})
	}
	appLoop()

	k.RunUntil(deadline)
	util = side.hostUtil()
	pkts = side.packets()
	irqs = side.interrupts()
	return pkts, util, irqs, appDone
}

func drive(k *sim.Kernel, deadline sim.Time, gen workload.Generator, send func(int)) {
	var tick func()
	tick = func() {
		if k.Now() > deadline {
			return
		}
		sz, gap := gen.Next()
		send(sz)
		k.After(gap, tick)
	}
	tick()
}

type nicSide struct{ s *netsim.Station }

func (n nicSide) hostUtil() float64  { return n.s.Host.Utilization() }
func (n nicSide) interrupts() uint64 { return n.s.Host.Interrupts() }
func (n nicSide) packets() uint64    { return n.s.Iface.Stats().Rx.Packets }

type baselineSide struct{ s *netsim.BaselineStation }

func (b baselineSide) hostUtil() float64  { return b.s.Host.Utilization() }
func (b baselineSide) interrupts() uint64 { return b.s.Host.Interrupts() }
func (b baselineSide) packets() uint64    { return b.s.Adapter.Stats().RxPackets }
