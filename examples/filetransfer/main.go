// Filetransfer: bulk data across the interface — the workload the paper's
// throughput analysis is about. Sweeps the transfer's record size and both
// adaptation layers, and prints achieved goodput against the physics
// ceiling, showing (a) per-packet cost amortization and (b) AAL3/4's
// per-cell tax versus AAL5.
//
//	go run ./examples/filetransfer
package main

import (
	"fmt"
	"log"

	"repro/internal/aal"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

const fileSize = 4 << 20 // 4 MiB transfer

func main() {
	fmt.Printf("transferring %d bytes over STS-3c, varying record size\n\n", fileSize)
	fmt.Printf("%-8s %-7s %12s %12s %9s\n", "record", "aal", "goodput", "ceiling", "achieved")

	for _, aal34 := range []bool{false, true} {
		for _, record := range []int{512, 4096, 9180, 65535} {
			goodput, ceiling := transfer(record, aal34)
			name := "AAL5"
			if aal34 {
				name = "AAL3/4"
			}
			fmt.Printf("%-8d %-7s %9.2f Mb/s %9.2f Mb/s %8.1f%%\n",
				record, name, goodput/1e6, ceiling/1e6, 100*goodput/ceiling)
		}
	}
}

// transfer ships fileSize bytes in record-sized packets and returns the
// achieved and ceiling goodput in bits per second.
func transfer(record int, aal34 bool) (goodput, ceiling float64) {
	tb, err := core.NewTestbed(core.Options{AAL34: aal34}, core.LinkOptions{})
	if err != nil {
		log.Fatal(err)
	}
	vc := core.VC{VCI: 7}
	if err := tb.OpenVC(vc); err != nil {
		log.Fatal(err)
	}

	var receivedBytes int
	var done sim.Time
	tb.B.OnReceive(func(p core.Packet) {
		receivedBytes += len(p.Data)
		if receivedBytes >= fileSize {
			done = p.At
		}
	})

	// The "application": keep 4 records in flight until the file is sent.
	remaining := fileSize
	var pump func()
	pump = func() {
		if remaining <= 0 {
			return
		}
		n := record
		if n > remaining {
			n = remaining
		}
		remaining -= n
		if err := tb.A.Send(vc, make([]byte, n), pump); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4 && remaining > 0; i++ {
		pump()
	}
	tb.Run()

	if done == 0 {
		log.Fatalf("transfer incomplete: %d of %d bytes", receivedBytes, fileSize)
	}
	goodput = float64(fileSize) * 8 / done.Seconds()

	cells := aal.CellsForSDU5(record)
	if aal34 {
		cells = aal.CellsForSDU34(record)
	}
	ceiling = float64(units.STS3cPayload) * float64(record) / float64(cells*53)
	return goodput, ceiling
}
