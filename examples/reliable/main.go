// Reliable: a host-resident go-back-N transport over the interface — the
// division of labor the paper prescribes (adapter does AAL, host does
// transport) run end to end over an increasingly lossy path.
//
// The output shows both sides of the era's argument: the transport makes
// delivery reliable, and the combination of AAL5 whole-frame discard with
// go-back-N recovery makes effective throughput collapse under cell loss —
// the pain that motivated FEC and selective-retransmission research.
//
//	go run ./examples/reliable
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/transport"
)

const fileSize = 1 << 20 // 1 MiB per transfer

func main() {
	fmt.Printf("reliable 1 MiB transfers over STS-3c, go-back-N on the hosts\n\n")
	fmt.Printf("%-10s %12s %12s %12s %10s\n",
		"cell loss", "goodput", "segments", "retransmits", "timeouts")
	for _, loss := range []float64{0, 1e-4, 5e-4, 2e-3, 5e-3} {
		run(loss)
	}
	fmt.Println("\ndelivery stays perfect; throughput does not — AAL5 turns one lost cell")
	fmt.Println("into a lost 8 KiB segment, and go-back-N resends the whole window after it.")
}

func run(loss float64) {
	k := sim.NewKernel()
	a, err := netsim.NewStation(k, nic.DefaultConfig("a"))
	if err != nil {
		log.Fatal(err)
	}
	b, err := netsim.NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		log.Fatal(err)
	}
	netsim.Connect(k, a, b, netsim.LinkConfig{Delay: 10_000, LossProb: loss, Seed: 7})

	vc := atm.VC{VCI: 60}
	a.Iface.OpenVC(vc)
	b.Iface.OpenVC(vc)

	cfg := transport.DefaultConfig()
	cfg.RTO = 5 * sim.Millisecond
	cfg.MaxRetries = 100
	tx := transport.NewSender(k, a.Iface, vc, cfg)

	file := make([]byte, fileSize)
	for i := range file {
		file[i] = byte(i * 7)
	}
	var got []byte
	rx := transport.NewReceiver(b.Iface, vc, func(msg []byte) { got = msg })
	b.Iface.OnReceive(func(d nic.Delivered) { rx.HandleData(d.SDU) })
	a.Iface.OnReceive(func(d nic.Delivered) { tx.HandleAck(d.SDU) })

	var done sim.Time
	if err := tx.Send(file, func(err error) {
		if err != nil {
			log.Fatalf("loss %v: %v", loss, err)
		}
		done = k.Now()
	}); err != nil {
		log.Fatal(err)
	}
	k.Run()
	if !bytes.Equal(got, file) {
		log.Fatalf("loss %v: file corrupted", loss)
	}
	st := tx.Stats()
	goodput := float64(fileSize) * 8 / done.Seconds() / 1e6
	fmt.Printf("%-10.0e %9.2f Mb/s %12d %12d %10d\n",
		loss, goodput, st.Segments, st.Retransmits, st.Timeouts)
}
