// Quickstart: two simulated workstations with the SIGCOMM '91 ATM host
// interface, one virtual connection, one message each way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A testbed is two stations — each a host CPU, a TURBOchannel-class
	// bus, and the interface (protocol engines + FIFOs) — joined by 2 km
	// of fiber at STS-3c. The zero Options value is the board as built.
	tb, err := core.NewTestbed(core.Options{}, core.LinkOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// ATM is connection-oriented: open a virtual connection first.
	vc := core.VC{VPI: 0, VCI: 42}
	if err := tb.OpenVC(vc); err != nil {
		log.Fatal(err)
	}

	// Receive callbacks fire when the host's receive interrupt completes —
	// one interrupt per packet, never per cell; that is the architecture.
	tb.B.OnReceive(func(p core.Packet) {
		fmt.Printf("B got %q on %v after %v (%d cells)\n",
			p.Data, p.VC, p.At, p.Cells)
		// Reply.
		if err := tb.B.Send(p.VC, []byte("pong from 1991"), nil); err != nil {
			log.Fatal(err)
		}
	})
	tb.A.OnReceive(func(p core.Packet) {
		fmt.Printf("A got %q back at %v\n", p.Data, p.At)
	})

	if err := tb.A.Send(vc, []byte("ping across the testbed"), nil); err != nil {
		log.Fatal(err)
	}

	end := tb.Run() // run the discrete-event simulation to completion
	fmt.Printf("simulation finished at %v\n", end)

	st := tb.B.Stats()
	fmt.Printf("B's interface saw %d cells, delivered %d packets, %d errors\n",
		st.Rx.Cells, st.Rx.Packets, st.Rx.AALErrors)
}
