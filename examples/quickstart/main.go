// Quickstart: two simulated workstations with the SIGCOMM '91 ATM host
// interface, declared as a one-line topology, one message each way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A network is declared, not wired: name the nodes, the fibers between
	// them, and the virtual channel connections; the builder constructs the
	// stations — each a host CPU, a TURBOchannel-class bus, and the
	// interface (protocol engines + FIFOs) — allocates VCIs hop by hop,
	// runs connection admission, and opens the endpoints. The zero Options
	// value is the board as built.
	net, err := core.NewNetwork(core.NetworkSpec{
		Endpoints: []core.EndpointSpec{{Name: "a"}, {Name: "b"}},
		Links: []core.LinkSpec{
			{Name: "ab", A: core.NodeRef{Node: "a"}, B: core.NodeRef{Node: "b"}, DistanceKm: 2},
		},
		VCCs: []core.VCCSpec{
			{Name: "chat", From: "a", To: "b", VC: core.VC{VCI: 42}, Duplex: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	a, b := net.Endpoint("a"), net.Endpoint("b")
	vcc := net.VCC("chat")

	// Receive callbacks fire when the host's receive interrupt completes —
	// one interrupt per packet, never per cell; that is the architecture.
	b.OnReceive(func(p core.Packet) {
		fmt.Printf("B got %q on %v after %v (%d cells)\n",
			p.Data, p.VC, p.At, p.Cells)
		// Reply on the same connection.
		if err := b.Send(vcc.DestVC, []byte("pong from 1991"), nil); err != nil {
			log.Fatal(err)
		}
	})
	a.OnReceive(func(p core.Packet) {
		fmt.Printf("A got %q back at %v\n", p.Data, p.At)
	})

	if err := a.Send(vcc.SourceVC, []byte("ping across the testbed"), nil); err != nil {
		log.Fatal(err)
	}

	end := net.Run() // run the discrete-event simulation to completion
	fmt.Printf("simulation finished at %v\n", end)

	st := b.Stats()
	fmt.Printf("B's interface saw %d cells, delivered %d packets, %d errors\n",
		st.Rx.Cells, st.Rx.Packets, st.Rx.AALErrors)
}
