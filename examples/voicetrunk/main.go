// Voicetrunk: circuit emulation over ATM with AAL1 — the constant-bit-rate
// service the cell size was chosen for. A 64 kb/s "voice channel" (8 kB/s,
// one byte per 125 µs, like a DS0) is cellified, carried over a lossy
// fiber, and reproduced; AAL1's 3-bit sequence count detects losses and the
// receiver conceals them with silence so the circuit's clock never slips.
//
//	go run ./examples/voicetrunk
package main

import (
	"fmt"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/phy"
	"repro/internal/sim"
)

const (
	byteRate   = 8000                                     // bytes/s: a DS0 voice channel
	callLength = 10 * sim.Second                          // simulated call duration
	cellEvery  = sim.Duration(47 * sim.Second / byteRate) // 47 bytes fill time
)

func main() {
	fmt.Printf("64 kb/s voice over AAL1: one 47-byte cell every %v\n\n", cellEvery)
	fmt.Printf("%-12s %10s %10s %12s %14s\n",
		"cell loss", "cells", "lost", "concealed-B", "clock-slip-B")
	for _, loss := range []float64{0, 1e-4, 1e-3, 1e-2} {
		run(loss)
	}
	fmt.Println("\nthe reproduced stream length never drifts: losses become silence,")
	fmt.Println("not time — the property circuit emulation exists to provide.")
}

func run(lossProb float64) {
	k := sim.NewKernel()
	tx := aal.NewAAL1Sender()
	rx := aal.NewAAL1Receiver()
	vc := atm.VC{VPI: 0, VCI: 16}

	link := phy.NewCellLink(k, 25_000, 99, atm.SinkFunc(func(c *atm.Cell) {
		rx.Push(&c.Payload)
	}))
	link.LossProb = lossProb

	// The codec side: produce voice bytes continuously, emit a cell
	// whenever 47 bytes have accumulated (every ~5.875 ms).
	sent := 0
	var bytesIn int
	var tick func()
	tick = func() {
		if sim.Duration(k.Now()) >= callLength {
			return
		}
		chunk := make([]byte, 47)
		for i := range chunk {
			chunk[i] = byte(bytesIn + i) // the "voice" samples
		}
		bytesIn += 47
		tx.Write(chunk)
		cell := &atm.Cell{Header: atm.Header{Format: atm.UNI, VPI: vc.VPI, VCI: vc.VCI}}
		if tx.NextCell(&cell.Payload) {
			link.Send(cell)
			sent++
		}
		k.After(cellEvery, tick)
	}
	tick()
	k.Run()

	// Every sent cell accounts for 47 reproduced bytes: delivered ones
	// carry samples, lost ones are concealed as silence. Any difference
	// is clock slip — the failure circuit emulation must never have.
	reproduced := rx.Pending()
	concealed := int(rx.LostCells) * aal.AAL1Payload
	slip := sent*aal.AAL1Payload - reproduced
	fmt.Printf("%-12.0e %10d %10d %12d %14d\n",
		lossProb, sent, rx.LostCells, concealed, slip)
}
