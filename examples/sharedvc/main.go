// Sharedvc: several stations share ONE virtual connection into a server —
// the SMDS/connectionless-service pattern AAL3/4's multiplexing identifier
// exists for. The senders' frames interleave cell-by-cell on the shared VC
// (watch the wire trace); the receiver's MID demultiplexer keeps them
// apart. This is the capability AAL5 traded away for its per-cell
// efficiency, and the reason AAL3/4 survived in the SMDS world.
//
//	go run ./examples/sharedvc
package main

import (
	"fmt"
	"log"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	k := sim.NewKernel()
	shared := atm.VC{VCI: 200}

	// Three access stations, AAL3/4 build, each with its own MID.
	mids := []uint16{101, 202, 303}
	var senders []*nic.Interface
	for i, mid := range mids {
		cfg := nic.DefaultConfig(fmt.Sprintf("s%d", i))
		cfg.AAL = aal.AAL34
		iface, err := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
		if err != nil {
			log.Fatal(err)
		}
		iface.OpenVC(shared)
		if err := iface.SetMID(shared, mid); err != nil {
			log.Fatal(err)
		}
		senders = append(senders, iface)
	}

	// The server: MID-demultiplexing receiver.
	cfgRx := nic.DefaultConfig("server")
	cfgRx.AAL = aal.AAL34
	cfgRx.MIDMux = true
	server, err := nic.New(k, cfgRx, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	server.OpenVC(shared)

	// A 4-port switch merges the three access lines onto one server port —
	// all on the same VC (no translation): multipoint-to-point.
	sw := netsim.NewSwitch(k, "mux", 4, units.STS3cPayload, 128)
	cap := trace.New(k)
	cap.Limit = 12
	sw.Port(3).AttachSink(atm.SinkFunc(cap.Tap(server.DeliverCell)))
	for i, s := range senders {
		sw.SetRoute(i, shared, 3, shared, netsim.RouteOptions{Class: tm.UBR})
		// Unequal access-line lengths stagger the senders' cell clocks.
		link := phy.NewCellLink(k, sim.Duration(1000+700*i), uint64(i+1), sw.Port(i))
		s.AttachSink(link)
	}

	received := map[uint16][]byte{}
	server.OnReceive(func(d nic.Delivered) { received[d.MID] = d.SDU })

	for i, s := range senders {
		msg := []byte(fmt.Sprintf("message from access station %d over the shared VC", i))
		// Pad so the frames are long enough to interleave visibly.
		for len(msg) < 600 {
			msg = append(msg, '.')
		}
		if err := s.Send(shared, msg, nil); err != nil {
			log.Fatal(err)
		}
	}
	k.Run()

	fmt.Println("first cells on the server's access line (note the interleaved MIDs):")
	for i, r := range cap.Records() {
		mid := aal.MIDOf(&r.Cell.Payload)
		fmt.Printf("  cell %2d at %12v  vc=%v  mid=%d\n", i, r.At, r.Cell.Header.VC(), mid)
	}
	fmt.Println()
	for _, mid := range mids {
		msg := received[mid]
		if msg == nil {
			log.Fatalf("MID %d delivered nothing", mid)
		}
		fmt.Printf("MID %3d -> %q...\n", mid, msg[:44])
	}
	fmt.Printf("\n%d frames demultiplexed from one VC; AAL5 could not have done this.\n", len(received))
}
