// Policed: the traffic-management chain end to end — admission, shaping,
// policing. Two VCCs carry the same rt-VBR contract through a policing
// switch; a third connection asking for a 300 kc/s CBR trunk is refused at
// admission (the port's bandwidth budget is spent). VCC "shaped" paces its
// transmit stream to the contract with the NIC's dual leaky bucket and
// every cell conforms. VCC "raw" sends the same frames unshaped — each
// leaves as an 84-cell burst at line rate — and the policer tags its SCR
// violations and discards its PCR violations, shredding every frame.
//
// The topology, routes and admission all come from one declarative
// core.NewNetwork spec; admission control runs inside the builder, at the
// source access link and at every switch output port a connection crosses.
//
//	go run ./examples/policed
package main

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

const (
	sduSize    = 4000 // 84 cells under AAL5
	frameCells = 84
	runTime    = 40 * sim.Millisecond
)

func main() {
	ct := units.CellTime(units.STS3cPayload)
	contract := tm.VBRContract(150_000, 50_000, 32, 8*ct)

	// The data path: one sender (VCs interleaved so the shaped VCC's pacing
	// gaps don't stall the unshaped one), a fiber, a switch that polices
	// each VC at its ingress, a receiver. Admission happens as each VCC is
	// built: the CAC reserves the contract's SCR of bandwidth and MBS of
	// buffer at the congested output port.
	net, err := core.NewNetwork(core.NetworkSpec{
		Endpoints: []core.EndpointSpec{
			{Name: "a", Options: core.Options{InterleaveVCs: true}},
			{Name: "b"},
		},
		Switches: []core.SwitchSpec{
			{Name: "sw", Ports: 2, Rate: units.STS3cPayload, QueueDepth: 64},
		},
		Links: []core.LinkSpec{
			{Name: "a-sw", A: core.NodeRef{Node: "a"}, B: core.NodeRef{Node: "sw", Port: 0}, Delay: 5000, Seed: 7},
			{Name: "sw-b", A: core.NodeRef{Node: "sw", Port: 1}, B: core.NodeRef{Node: "b"}, Seed: 8},
		},
		VCCs: []core.VCCSpec{
			{Name: "shaped", From: "a", To: "b", VC: atm.VC{VCI: 101}, Contract: contract, Shape: true},
			{Name: "raw", From: "a", To: "b", VC: atm.VC{VCI: 102}, Contract: contract},
		},
	})
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"shaped", "raw"} {
		fmt.Printf("admitted  %-6s vc %v  %v\n", name, net.VCC(name).SourceVC, contract)
	}

	// A third connection wanting a CBR trunk on top is refused: the port
	// has 100 kc/s reserved and ~353 kc/s of line — no room for 300 more.
	greedy := tm.CBRContract(300_000, 0)
	if _, err := net.AddVCC(core.VCCSpec{
		Name: "trunk", From: "a", To: "b", VC: atm.VC{VCI: 103}, Contract: greedy,
	}); err != nil {
		fmt.Printf("rejected  %v\n          (%v)\n", greedy, err)
	}
	cac := net.PortCAC("sw", 1)
	fmt.Printf("reserved  %.0f of %.0f cells/s, %d of 64 buffer cells\n\n",
		cac.ReservedBandwidth(), units.CellRate(units.STS3cPayload), cac.ReservedBuffer())

	// Per-VC ingress policers on the admitted connections.
	k := net.Kernel()
	sw := net.Switch("sw")
	vccs := []*core.VCC{net.VCC("shaped"), net.VCC("raw")}
	pols := make(map[atm.VC]*tm.Policer)
	for _, v := range vccs {
		pol := tm.NewPolicer(contract)
		pol.TagSCR = true
		sw.SetPolicer(v.Hops[0].InPort, v.Hops[0].InVC, pol)
		pols[v.SourceVC] = pol
	}

	// Identical offered load on both VCCs: one frame per 84/SCR seconds — a
	// mean cell rate of exactly the contract's SCR.
	a, b := net.Endpoint("a"), net.Endpoint("b")
	delivered := map[atm.VC]int{}
	bytes := map[atm.VC]int{}
	b.Interface().OnReceive(func(d nic.Delivered) {
		delivered[d.VC]++
		bytes[d.VC] += len(d.SDU)
	})
	interval := sim.Duration(float64(frameCells) / contract.SCR * 1e9)
	payload := make([]byte, sduSize)
	deadline := sim.Time(runTime)
	var tick func()
	tick = func() {
		if k.Now() > deadline {
			return
		}
		for _, v := range vccs {
			a.Send(v.SourceVC, payload, nil)
		}
		k.After(interval, tick)
	}
	tick()
	k.RunUntil(deadline)
	k.Run()

	fmt.Printf("%-14s %8s %8s %8s %10s %10s %12s\n",
		"vcc", "cells", "conform", "tagged", "discarded", "frames-ok", "goodput-Mb/s")
	for _, v := range vccs {
		ps := pols[v.SourceVC].Stats()
		fmt.Printf("%-14s %8d %8d %8d %10d %10d %12.1f\n",
			fmt.Sprintf("%v %s", v.SourceVC, v.Name),
			ps.Cells, ps.Conformed, ps.Tagged, ps.Discarded, delivered[v.DestVC],
			units.ThroughputBps(int64(bytes[v.DestVC]), deadline)/1e6)
	}
	fmt.Println("\nsame mean rate, opposite fates: shaping to the contract is what")
	fmt.Println("makes the network's usage parameter control let the traffic live.")
}
