// Policed: the traffic-management chain end to end — admission, shaping,
// policing. Two VCs ask a CAC for the same rt-VBR contract (a third is
// refused: the link's bandwidth budget is spent), then offer identical mean
// loads through a switch whose ingress runs a GCRA policer per VC. VC 1
// shapes its transmit stream to the contract with the NIC's dual leaky
// bucket and every cell conforms. VC 2 sends the same frames unshaped —
// each leaves as an 84-cell burst at line rate — and the policer tags its
// SCR violations and discards its PCR violations, shredding every frame.
//
//	go run ./examples/policed
package main

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/units"
)

const (
	sduSize    = 4000 // 84 cells under AAL5
	frameCells = 84
	runTime    = 40 * sim.Millisecond
)

func main() {
	ct := units.CellTime(units.STS3cPayload)
	contract := tm.VBRContract(150_000, 50_000, 32, 8*ct)

	// Admission first: nothing flows until the CAC has reserved the
	// contract's SCR of bandwidth and MBS of buffer. The link can hold two
	// of these contracts plus slack, but not a 300 kc/s CBR trunk on top.
	cac := tm.NewCAC(units.STS3cPayload, 64)
	vcs := []atm.VC{{VCI: 101}, {VCI: 102}}
	for _, vc := range vcs {
		if err := cac.Admit(contract); err != nil {
			fmt.Println("admission failed:", err)
			return
		}
		fmt.Printf("admitted  vc %v  %v\n", vc, contract)
	}
	greedy := tm.CBRContract(300_000, 0)
	if err := cac.Admit(greedy); err != nil {
		fmt.Printf("rejected  %v\n          (%v)\n", greedy, err)
	}
	fmt.Printf("reserved  %.0f of %.0f cells/s, %d of 64 buffer cells\n\n",
		cac.ReservedBandwidth(), units.CellRate(units.STS3cPayload), cac.ReservedBuffer())

	// The data path: one sender (VCs interleaved so the shaped VC's pacing
	// gaps don't stall the unshaped one), a fiber, a switch that polices
	// each VC at its ingress, a receiver.
	k := sim.NewKernel()
	cfg := nic.DefaultConfig("a")
	cfg.InterleaveVCs = true
	a, err := netsim.NewStation(k, cfg)
	if err != nil {
		panic(err)
	}
	b, err := netsim.NewStation(k, nic.DefaultConfig("b"))
	if err != nil {
		panic(err)
	}
	sw := netsim.NewSwitch(k, "sw", 2, units.STS3cPayload, 64)
	link := phy.NewCellLink(k, 5000, 7, sw.Input(0))
	a.Iface.SetOutput(link.Send)
	sw.AttachOutput(1, b.Iface.DeliverCell)

	pols := make(map[atm.VC]*tm.Policer)
	for _, vc := range vcs {
		a.Iface.OpenVC(vc)
		b.Iface.OpenVC(vc)
		sw.RouteClass(0, vc, 1, vc, contract.Class)
		pol := tm.NewPolicer(contract)
		pol.TagSCR = true
		sw.SetPolicer(0, vc, pol)
		pols[vc] = pol
	}
	// Only VC 101 honors its contract on transmit.
	if err := a.Iface.SetContract(vcs[0], contract); err != nil {
		panic(err)
	}

	// Identical offered load on both VCs: one frame per 84/SCR seconds — a
	// mean cell rate of exactly the contract's SCR.
	delivered := map[atm.VC]int{}
	bytes := map[atm.VC]int{}
	b.Iface.OnReceive(func(d nic.Delivered) {
		delivered[d.VC]++
		bytes[d.VC] += len(d.SDU)
	})
	interval := sim.Duration(float64(frameCells) / contract.SCR * 1e9)
	payload := make([]byte, sduSize)
	deadline := sim.Time(runTime)
	var tick func()
	tick = func() {
		if k.Now() > deadline {
			return
		}
		for _, vc := range vcs {
			a.Iface.Send(vc, payload, nil)
		}
		k.After(interval, tick)
	}
	tick()
	k.RunUntil(deadline)
	k.Run()

	fmt.Printf("%-14s %8s %8s %8s %10s %10s %12s\n",
		"vc", "cells", "conform", "tagged", "discarded", "frames-ok", "goodput-Mb/s")
	for _, vc := range vcs {
		ps := pols[vc].Stats()
		name := fmt.Sprintf("%v shaped", vc)
		if vc == vcs[1] {
			name = fmt.Sprintf("%v raw", vc)
		}
		fmt.Printf("%-14s %8d %8d %8d %10d %10d %12.1f\n", name,
			ps.Cells, ps.Conformed, ps.Tagged, ps.Discarded, delivered[vc],
			units.ThroughputBps(int64(bytes[vc]), deadline)/1e6)
	}
	fmt.Println("\nsame mean rate, opposite fates: shaping to the contract is what")
	fmt.Println("makes the network's usage parameter control let the traffic live.")
}
