// Videostream: a constant-bit-rate source (the multimedia workload the
// Aurora testbed anticipated) through the interface, measuring end-to-end
// delay and delay jitter per video frame — the QoS dimension where the
// per-packet architecture shines: no host scheduling noise per cell.
//
// It then repeats the run with competing bulk traffic on a second VC to
// show how much jitter the shared transmit path introduces.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

const (
	frameSize = 32 * 1024 // ~32 KiB per video frame
	frames    = 60
)

func main() {
	// 30 fps of 32 KiB frames ≈ 7.9 Mb/s — a 1991-era compressed stream.
	period := sim.Duration(33_333_333) // 33.333 ms in ns
	fmt.Printf("CBR stream: %d frames of %d bytes every %v (≈%.1f Mb/s)\n\n",
		frames, frameSize, period, float64(frameSize)*8/period.Seconds()/1e6)

	quiet := run(period, false, false)
	loaded := run(period, true, false)
	shaped := run(period, true, true)

	report("idle network          ", quiet)
	report("with bulk vc          ", loaded)
	report("bulk + interleave/pace", shaped)
	fmt.Println()
	fmt.Println("interleaved segmentation plus pacing the bulk flow restores the CBR")
	fmt.Println("stream's delay behaviour — the QoS case for per-VC scheduling on the adapter.")
}

// run streams the CBR flow and returns per-frame latencies. shaped enables
// multi-VC interleaving and paces the bulk flow to ~60% of the line.
func run(period sim.Duration, withBulk, shaped bool) []sim.Duration {
	tb, err := core.NewTestbed(core.Options{InterleaveVCs: shaped}, core.LinkOptions{DistanceKm: 10})
	if err != nil {
		log.Fatal(err)
	}
	video := core.VC{VCI: 20}
	bulk := core.VC{VCI: 21}
	if err := tb.OpenVC(video); err != nil {
		log.Fatal(err)
	}
	if err := tb.OpenVC(bulk); err != nil {
		log.Fatal(err)
	}

	sendTimes := make([]sim.Time, 0, frames)
	var latencies []sim.Duration
	tb.B.OnReceive(func(p core.Packet) {
		if p.VC != video {
			return
		}
		i := len(latencies)
		if i < len(sendTimes) {
			latencies = append(latencies, p.At-sendTimes[i])
		}
	})

	k := tb.Kernel()
	sent := 0
	var tick func()
	tick = func() {
		if sent >= frames {
			return
		}
		sendTimes = append(sendTimes, k.Now())
		if err := tb.A.Send(video, make([]byte, frameSize), nil); err != nil {
			log.Fatal(err)
		}
		sent++
		k.After(period, tick)
	}
	tick()

	if shaped {
		// Cap the bulk flow at ~210k cells/s (~60% of STS-3c payload).
		if err := tb.A.SetPeakCellRate(bulk, 210_000); err != nil {
			log.Fatal(err)
		}
	}
	if withBulk {
		// A greedy bulk flow on the same interface, forever.
		deadline := sim.Time(frames+2) * sim.Time(period)
		var pump func()
		pump = func() {
			if k.Now() > deadline {
				return
			}
			tb.A.Send(bulk, make([]byte, 65535), pump)
		}
		for i := 0; i < 3; i++ {
			pump()
		}
	}
	tb.Run()
	if len(latencies) != frames {
		log.Fatalf("delivered %d of %d frames", len(latencies), frames)
	}
	return latencies
}

func report(label string, lat []sim.Duration) {
	var min, max, sum sim.Duration
	min = sim.Never
	for _, l := range lat {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	mean := float64(sum) / float64(len(lat))
	var varsum float64
	for _, l := range lat {
		d := float64(l) - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / float64(len(lat)))
	fmt.Printf("%s  frames %d   delay min %v  mean %v  max %v   jitter(std) %v\n",
		label, len(lat), min, sim.Duration(mean), max, sim.Duration(std))
}
