// Command atmbench regenerates the reconstructed evaluation of the Davie
// SIGCOMM '91 host–network interface: experiments E1 through E21 (see
// DESIGN.md for the index). Run with no flags to print everything, or
// select experiments:
//
//	atmbench -exp e3,e4
//	atmbench -exp e1 -csv
//	atmbench -quick        # shorter simulated runs
//	atmbench -parallel 0   # fan independent sweep points across all CPUs
//	atmbench -shards 4     # shard each simulation across partition kernels
//	atmbench -exp e18 -trace e18.json   # export E18's flight trace
//
// -parallel and -shards are different axes: -parallel runs many independent
// simulations at once (one goroutine per sweep point), while -shards splits
// one simulation's topology into conservatively-synchronized partitions
// (see DESIGN.md, "Parallel execution"). Both are pinned bit-identical to
// the serial kernel and they compose.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments (e1..e21) or 'all'")
	quick := flag.Bool("quick", false, "shorter simulated runs (for smoke tests)")
	csv := flag.Bool("csv", false, "emit tables as CSV where applicable")
	metricsPath := flag.String("metrics", "", "run the instrumented telemetry pass and write its JSON snapshot here (\"-\" for stdout)")
	tracePath := flag.String("trace", "", "with e18: write its flight recording as Perfetto trace-event JSON here (\"-\" for stdout)")
	cwndPath := flag.String("cwnd", "", "with e20: write the sampled cwnd/metrics time series as CSV here (\"-\" for stdout)")
	geoFlows := flag.Int("geo-flows", 2, "with e20: number of concurrent GEO flows")
	parallel := flag.Int("parallel", 1, "worker goroutines fanning independent sweep points across CPUs (0 = GOMAXPROCS); results are bit-identical to -parallel 1; for parallelism inside one simulation see -shards")
	shards := flag.Int("shards", 1, "partition count for intra-run conservative-parallel execution: each simulation's topology is split across this many kernels advancing in lock-step (experiments that build partitionable topologies honor it; results are bit-identical to -shards 1)")
	burst := flag.Bool("burst", false, "run the SONET-path recovery ablation, serial vs burst cell vectors (alias for -exp sonet)")
	flag.Parse()

	experiments.SetParallelism(*parallel)
	experiments.SetShards(*shards)

	want := map[string]bool{}
	if *expFlag == "all" {
		for i := 1; i <= 21; i++ {
			want[fmt.Sprintf("e%d", i)] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}
	if *burst {
		want["sonet"] = true
	}

	runTime := func(full sim.Duration) sim.Duration {
		if *quick {
			return full / 4
		}
		return full
	}

	emitTable := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	emitSeries := func(s *report.Series) {
		if *csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Println(s.String())
		}
	}

	ran := 0
	if want["e1"] {
		_, tb := experiments.E1(engine.DefaultConfig())
		emitTable(tb)
		ran++
	}
	if want["e2"] {
		_, tb := experiments.E2(engine.DefaultConfig())
		emitTable(tb)
		ran++
	}
	if want["e3"] {
		ec := experiments.DefaultE3()
		ec.RunTime = runTime(ec.RunTime)
		_, s155, s622 := experiments.E3(ec)
		emitSeries(s155)
		emitSeries(s622)
		ran++
	}
	if want["e4"] {
		ec := experiments.DefaultE4()
		ec.RunTime = runTime(ec.RunTime)
		_, util, tput := experiments.E4(ec)
		emitSeries(util)
		emitSeries(tput)
		ran++
	}
	if want["e5"] {
		_, tb := experiments.E5()
		emitTable(tb)
		ran++
	}
	if want["e6"] {
		_, sr := experiments.E6(nil)
		emitSeries(sr)
		ran++
	}
	if want["e7"] {
		_, tb := experiments.E7()
		emitTable(tb)
		ran++
	}
	if want["e8"] {
		ec := experiments.DefaultE8()
		ec.RunTime = runTime(ec.RunTime)
		_, sr := experiments.E8(ec)
		emitSeries(sr)
		ran++
	}
	if want["e9"] {
		_, sr := experiments.E9(nil, runTime(30*sim.Millisecond))
		emitSeries(sr)
		ran++
	}
	if want["e10"] {
		_, sr := experiments.E10(nil)
		emitSeries(sr)
		ran++
	}
	if want["e11"] {
		_, sr := experiments.E11(nil, runTime(20*sim.Millisecond))
		emitSeries(sr)
		ran++
	}
	if want["e12"] {
		size := 1 << 20
		if *quick {
			size = 1 << 18
		}
		_, sr := experiments.E12(nil, size)
		emitSeries(sr)
		ran++
	}
	if want["e13"] {
		_, sr := experiments.E13(nil, 9180, 8, runTime(60*sim.Millisecond))
		emitSeries(sr)
		ran++
	}
	if want["e14"] {
		_, tb := experiments.E14(runTime(40 * sim.Millisecond))
		emitTable(tb)
		ran++
	}
	if want["e15"] {
		_, sr := experiments.E15(nil, runTime(40*sim.Millisecond))
		emitSeries(sr)
		ran++
	}
	if want["e16"] {
		_, sr := experiments.E16(runTime(30 * sim.Millisecond))
		emitSeries(sr)
		ran++
	}
	if want["e17"] {
		res, sr := experiments.E17(runTime(20 * sim.Millisecond))
		fmt.Println("E17:", res.String())
		emitSeries(sr)
		ran++
	}
	if want["e18"] {
		_, tb, rec := experiments.E18()
		emitTable(tb)
		if *tracePath != "" {
			if err := writeTrace(*tracePath, rec); err != nil {
				fmt.Fprintln(os.Stderr, "atmbench:", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if want["e19"] {
		pts, sr := experiments.E19(nil, runTime(2*sim.Second))
		emitSeries(sr)
		for _, p := range pts {
			fmt.Println(" ", p.String())
		}
		ran++
	}
	if want["e20"] {
		res, tb := experiments.E20(*geoFlows, runTime(10*sim.Second))
		emitTable(tb)
		if *cwndPath != "" {
			if err := writeCwnd(*cwndPath, res.Sampler); err != nil {
				fmt.Fprintln(os.Stderr, "atmbench:", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if want["e21"] {
		pts, sr := experiments.E21(runTime(30 * sim.Millisecond))
		emitSeries(sr)
		for _, p := range pts {
			fmt.Println(" ", p.String())
		}
		ran++
	}
	if want["sonet"] {
		_, tb := experiments.SonetPath(runTime(20 * sim.Millisecond))
		emitTable(tb)
		ran++
	}
	if *metricsPath != "" {
		ec := experiments.DefaultTelemetry()
		ec.RunTime = runTime(ec.RunTime)
		snap, tb := experiments.Telemetry(ec)
		emitTable(tb)
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *metricsPath == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(*metricsPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmbench:", err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "atmbench: no experiment matched %q (use e1..e21 or all)\n", *expFlag)
		os.Exit(2)
	}
}

// writeCwnd exports the sampled metrics time series (cwnd gauges included)
// as CSV.
func writeCwnd(path string, s *trace.Sampler) error {
	if path == "-" {
		return s.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace exports a flight recording as Perfetto trace-event JSON.
func writeTrace(path string, rec *trace.Recorder) error {
	if path == "-" {
		return rec.WriteTraceJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTraceJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
