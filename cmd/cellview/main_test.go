package main

import (
	"strings"
	"testing"

	"repro/internal/atm"
	"repro/internal/ip"
)

func encodeCellHex(t *testing.T, h atm.Header, fill byte) string {
	t.Helper()
	c := atm.Cell{Header: h}
	for i := range c.Payload {
		c.Payload[i] = fill
	}
	var wire [atm.CellSize]byte
	if err := c.Encode(wire[:]); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, x := range wire {
		b.WriteString(strings.ToLower(strings.TrimPrefix(hexByte(x), "0x")))
	}
	return b.String()
}

func hexByte(b byte) string {
	const digits = "0123456789abcdef"
	return "0x" + string(digits[b>>4]) + string(digits[b&0xf])
}

func TestDecodeFullCell(t *testing.T) {
	h := atm.Header{Format: atm.UNI, VPI: 3, VCI: 77, PT: atm.PTUserEnd}
	var out strings.Builder
	if err := decodeOne(&out, encodeCellHex(t, h, 0xab), atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"VPI 3", "VCI 77", "AAL5 end of frame", "abab"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDecodeHeaderOnly(t *testing.T) {
	h := atm.Header{Format: atm.UNI, VPI: 1, VCI: 2, PT: atm.PTUser0}
	var buf [5]byte
	if err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	hexStr := ""
	for _, b := range buf {
		hexStr += strings.TrimPrefix(hexByte(b), "0x")
	}
	var out strings.Builder
	if err := decodeOne(&out, hexStr, atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VCI 2") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestDecodeCorrectsHeaderBit(t *testing.T) {
	h := atm.Header{Format: atm.UNI, VPI: 0, VCI: 9, PT: atm.PTUser0}
	var buf [5]byte
	h.Encode(buf[:])
	buf[2] ^= 0x01
	hexStr := ""
	for _, b := range buf {
		hexStr += strings.TrimPrefix(hexByte(b), "0x")
	}
	var out strings.Builder
	if err := decodeOne(&out, hexStr, atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "corrected") {
		t.Fatalf("correction not reported:\n%s", out.String())
	}
}

func TestDecodeSpacedAndColonedHex(t *testing.T) {
	var out strings.Builder
	if err := decodeOne(&out, "00 00:00 01 52", atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "idle/unassigned") {
		t.Fatalf("idle cell not flagged:\n%s", out.String())
	}
}

func TestHECMode(t *testing.T) {
	var out strings.Builder
	if err := decodeOne(&out, "00000001", atm.UNI, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0x52") {
		t.Fatalf("HEC output:\n%s", out.String())
	}
}

func TestDecodeErrors(t *testing.T) {
	var out strings.Builder
	if err := decodeOne(&out, "zz", atm.UNI, false); err == nil {
		t.Fatal("bad hex accepted")
	}
	if err := decodeOne(&out, "0102", atm.UNI, false); err == nil {
		t.Fatal("short input accepted")
	}
	if err := decodeOne(&out, "deadbeef00", atm.UNI, false); err == nil {
		t.Fatal("garbage header accepted")
	}
	if err := decodeOne(&out, "01", atm.UNI, true); err == nil {
		t.Fatal("short HEC input accepted")
	}
}

func TestDecodeCLPAndEFCI(t *testing.T) {
	h := atm.Header{Format: atm.UNI, VPI: 0, VCI: 42, PT: atm.PTUserCongested, CLP: true}
	var out strings.Builder
	if err := decodeOne(&out, encodeCellHex(t, h, 0x11), atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"CLP 1 (discard eligible)", "EFCI: congestion experienced"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// EFCI + end of frame decode together.
	h.PT = atm.PTUserCongestedEnd
	h.CLP = false
	out.Reset()
	if err := decodeOne(&out, encodeCellHex(t, h, 0x11), atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	for _, want := range []string{"CLP 0", "EFCI", "AAL5 end of frame"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// A clean cell shows neither flag.
	h.PT = atm.PTUser0
	out.Reset()
	if err := decodeOne(&out, encodeCellHex(t, h, 0x11), atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "EFCI") || strings.Contains(out.String(), "discard eligible") {
		t.Fatalf("spurious flags:\n%s", out.String())
	}
}

func encapCellHex(t *testing.T, h atm.Header, sdu []byte) string {
	t.Helper()
	c := atm.Cell{Header: h}
	copy(c.Payload[:], sdu)
	var wire [atm.CellSize]byte
	if err := c.Encode(wire[:]); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, x := range wire {
		b.WriteString(strings.TrimPrefix(hexByte(x), "0x"))
	}
	return b.String()
}

func TestDecodeLLCSnapIPv4(t *testing.T) {
	// A short datagram: header + 12 payload bytes fit entirely inside one
	// cell behind the 8-byte LLC/SNAP header.
	iph := ip.Header{Proto: ip.ProtoTCP, Src: ip.Addr{10, 0, 0, 1}, Dst: ip.Addr{10, 0, 0, 2}}
	sdu := ip.Encapsulate(ip.LLCSnap, ip.EtherTypeIPv4, iph.Datagram(make([]byte, 12)))
	h := atm.Header{Format: atm.UNI, VPI: 0, VCI: 100, PT: atm.PTUser0}
	var out strings.Builder
	if err := decodeOne(&out, encapCellHex(t, h, sdu), atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"llc/snap", "0x0800 (IPv4)", "10.0.0.1 -> 10.0.0.2",
		"proto tcp", "len 32 (12 payload bytes in this cell)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDecodeLLCSnapIPv4Truncated(t *testing.T) {
	// A full-size datagram: only its front rides in the first cell, and the
	// decoder reports the continuation instead of rejecting it.
	iph := ip.Header{Proto: ip.ProtoUDP, Src: ip.Addr{192, 168, 1, 1}, Dst: ip.Addr{192, 168, 1, 2}}
	sdu := ip.Encapsulate(ip.LLCSnap, ip.EtherTypeIPv4, iph.Datagram(make([]byte, 1000)))
	h := atm.Header{Format: atm.UNI, VPI: 0, VCI: 100, PT: atm.PTUser0}
	var out strings.Builder
	if err := decodeOne(&out, encapCellHex(t, h, sdu[:atm.PayloadSize]), atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"llc/snap", "192.168.1.1 -> 192.168.1.2", "proto udp",
		"len 1020 [continues beyond this cell]"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDecodeLLCSnapNonIP(t *testing.T) {
	// An ARP EtherType decodes the encapsulation but goes no deeper.
	sdu := ip.Encapsulate(ip.LLCSnap, ip.EtherTypeARP, make([]byte, 28))
	h := atm.Header{Format: atm.UNI, VPI: 0, VCI: 100, PT: atm.PTUser0}
	var out strings.Builder
	if err := decodeOne(&out, encapCellHex(t, h, sdu), atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "0x0806 (ARP)") {
		t.Fatalf("ARP EtherType not decoded:\n%s", got)
	}
	if strings.Contains(got, "ipv4") {
		t.Fatalf("spurious ipv4 decode:\n%s", got)
	}
}

func TestDecodePlainPayloadNoEncap(t *testing.T) {
	// A payload that is not LLC/SNAP prints no encapsulation lines.
	h := atm.Header{Format: atm.UNI, VPI: 0, VCI: 100, PT: atm.PTUser0}
	var out strings.Builder
	if err := decodeOne(&out, encodeCellHex(t, h, 0x42), atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "llc/snap") {
		t.Fatalf("spurious llc/snap decode:\n%s", out.String())
	}
}

func TestDecodeRMCell(t *testing.T) {
	// A backward RM cell with CI set decodes direction, feedback bits and
	// the three rates.
	c := atm.Cell{Header: atm.Header{Format: atm.UNI, VPI: 0, VCI: 100, PT: atm.PTResourceMgmt}}
	rm := atm.RM{DIR: true, CI: true, ER: 317_952, CCR: 100_000, MCR: 1_413}
	rm.Encode(&c.Payload)
	var wire [atm.CellSize]byte
	if err := c.Encode(wire[:]); err != nil {
		t.Fatal(err)
	}
	hexStr := ""
	for _, b := range wire {
		hexStr += strings.TrimPrefix(hexByte(b), "0x")
	}
	var out strings.Builder
	if err := decodeOne(&out, hexStr, atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"abr backward (dest->source)", "CI (congestion)", "ER 317952", "CCR 99968", "MCR 1414"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "NI (no increase)") || strings.Contains(got, "BN (switch-generated)") {
		t.Fatalf("spurious flags:\n%s", got)
	}

	// A corrupted RM payload reports itself instead of printing garbage.
	c.Payload[4] ^= 0xff
	if err := c.Encode(wire[:]); err != nil {
		t.Fatal(err)
	}
	hexStr = ""
	for _, b := range wire {
		hexStr += strings.TrimPrefix(hexByte(b), "0x")
	}
	out.Reset()
	if err := decodeOne(&out, hexStr, atm.UNI, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rm        undecodable") {
		t.Fatalf("corrupt RM not flagged:\n%s", out.String())
	}
}
