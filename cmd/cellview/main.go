// Command cellview decodes hex-dumped ATM cells and AAL frames from stdin
// or its arguments — the debugging loupe for anything this repository's
// framers and segmenters emit.
//
//	echo 0000000105526a6a... | cellview            # one 53-byte cell
//	cellview -format nni 12345678...
//	cellview -hec 00000001                          # compute a header's HEC
//
// Cell payloads that begin with an RFC 2684 LLC/SNAP routed-PDU header
// (AA-AA-03 + OUI + EtherType) are decoded one layer deeper, including the
// IPv4 header of an encapsulated datagram.
package main

import (
	"bufio"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/atm"
	"repro/internal/crc"
	"repro/internal/ip"
)

func main() {
	format := flag.String("format", "uni", "header format: uni or nni")
	hecOnly := flag.Bool("hec", false, "treat input as 4 header bytes; print the HEC")
	flag.Parse()

	var f atm.Format
	switch strings.ToLower(*format) {
	case "uni":
		f = atm.UNI
	case "nni":
		f = atm.NNI
	default:
		fmt.Fprintf(os.Stderr, "cellview: unknown format %q\n", *format)
		os.Exit(2)
	}

	inputs := flag.Args()
	if len(inputs) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				inputs = append(inputs, line)
			}
		}
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "cellview: no input (hex on stdin or as arguments)")
		os.Exit(2)
	}

	exit := 0
	for _, in := range inputs {
		if err := decodeOne(os.Stdout, in, f, *hecOnly); err != nil {
			fmt.Fprintln(os.Stderr, "cellview:", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func decodeOne(w io.Writer, input string, f atm.Format, hecOnly bool) error {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == ':' || r == '\t' {
			return -1
		}
		return r
	}, input)
	raw, err := hex.DecodeString(clean)
	if err != nil {
		return fmt.Errorf("bad hex: %v", err)
	}

	if hecOnly {
		if len(raw) < 4 {
			return fmt.Errorf("need 4 header bytes, got %d", len(raw))
		}
		fmt.Fprintf(w, "HEC(% x) = %#02x\n", raw[:4], crc.HEC([4]byte{raw[0], raw[1], raw[2], raw[3]}))
		return nil
	}

	switch {
	case len(raw) >= atm.CellSize:
		var c atm.Cell
		corrected, err := c.Decode(raw[:atm.CellSize], f)
		if err != nil {
			return fmt.Errorf("cell decode: %v", err)
		}
		printHeader(w, &c.Header, corrected)
		fmt.Fprintf(w, "  payload   %s\n", hex.EncodeToString(c.Payload[:16])+"...")
		if atm.IsRM(&c.Header) {
			printRM(w, &c.Payload)
		} else {
			printEncap(w, c.Payload[:])
		}
		if len(raw) > atm.CellSize {
			fmt.Fprintf(w, "  (%d trailing bytes ignored)\n", len(raw)-atm.CellSize)
		}
	case len(raw) >= atm.HeaderSize:
		var h atm.Header
		corrected, err := h.Decode(raw[:atm.HeaderSize], f)
		if err != nil {
			return fmt.Errorf("header decode: %v", err)
		}
		printHeader(w, &h, corrected)
	default:
		return fmt.Errorf("need at least %d bytes, got %d", atm.HeaderSize, len(raw))
	}
	return nil
}

// printEncap recognizes an RFC 2684 LLC/SNAP routed-PDU header at the start
// of a cell payload — the shape of the first cell of an encapsulated AAL5
// frame — and decodes it, plus the IPv4 header behind it when the EtherType
// says so. A 48-byte cell usually holds only the front of the datagram, so a
// header whose TotalLen runs past the cell is reported as continuing rather
// than rejected.
func printEncap(w io.Writer, payload []byte) {
	et, pdu, ok := ip.DecodeLLCSnap(payload)
	if !ok {
		return
	}
	fmt.Fprintf(w, "  llc/snap  AA-AA-03  OUI 00-00-00  ethertype %#04x (%s)\n",
		et, ip.EtherTypeName(et))
	if et != ip.EtherTypeIPv4 || len(pdu) < ip.HeaderSize {
		return
	}
	h, body, err := ip.Parse(pdu)
	switch {
	case err == nil:
		fmt.Fprintf(w, "  ipv4      %v -> %v  proto %s  ttl %d  len %d (%d payload bytes in this cell)\n",
			h.Src, h.Dst, protoName(h.Proto), h.TTL, h.TotalLen, len(body))
	case errors.Is(err, ip.ErrTruncated):
		// The header itself parsed and checksummed; only the body spills
		// into the frame's later cells.
		fmt.Fprintf(w, "  ipv4      %v -> %v  proto %s  ttl %d  len %d [continues beyond this cell]\n",
			h.Src, h.Dst, protoName(h.Proto), h.TTL, h.TotalLen)
	default:
		fmt.Fprintf(w, "  ipv4      undecodable: %v\n", err)
	}
}

// printRM decodes the ABR resource-management payload of a PT=0b110 cell:
// direction and feedback bits, then the three rates in the 16-bit ATM
// floating-point format.
func printRM(w io.Writer, payload *[atm.PayloadSize]byte) {
	var rm atm.RM
	if err := rm.Decode(payload); err != nil {
		fmt.Fprintf(w, "  rm        undecodable: %v\n", err)
		return
	}
	dir := "forward (source->dest)"
	if rm.DIR {
		dir = "backward (dest->source)"
	}
	var flags []string
	if rm.BN {
		flags = append(flags, "BN (switch-generated)")
	}
	if rm.CI {
		flags = append(flags, "CI (congestion)")
	}
	if rm.NI {
		flags = append(flags, "NI (no increase)")
	}
	fl := ""
	if len(flags) > 0 {
		fl = "  " + strings.Join(flags, ", ")
	}
	fmt.Fprintf(w, "  rm        abr %s%s\n", dir, fl)
	fmt.Fprintf(w, "            ER %.0f c/s  CCR %.0f c/s  MCR %.0f c/s\n", rm.ER, rm.CCR, rm.MCR)
}

// protoName names the IP protocol numbers the testbed carries.
func protoName(p uint8) string {
	switch p {
	case ip.ProtoTCP:
		return "tcp"
	case ip.ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("%d", p)
	}
}

func printHeader(w io.Writer, h *atm.Header, corrected bool) {
	clp := "0"
	if h.CLP {
		clp = "1 (discard eligible)"
	}
	fmt.Fprintf(w, "%v header  VPI %d  VCI %d  PT %03b  CLP %s",
		h.Format, h.VPI, h.VCI, h.PT, clp)
	if h.Format == atm.UNI {
		fmt.Fprintf(w, "  GFC %d", h.GFC)
	}
	switch {
	case corrected:
		fmt.Fprint(w, "  [single-bit error corrected]")
	case h.IsIdle():
		fmt.Fprint(w, "  [idle/unassigned]")
	}
	if h.PT.User() {
		if h.PT.Congestion() {
			fmt.Fprint(w, "  [EFCI: congestion experienced]")
		}
		if h.PT.EndOfFrame() {
			fmt.Fprint(w, "  [AAL5 end of frame]")
		}
	}
	fmt.Fprintln(w)
}
