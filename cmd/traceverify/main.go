// Command traceverify validates an exported flight-recorder trace against
// the Chrome/Perfetto trace-event schema subset this repo emits: a JSON
// object with a traceEvents array of M (metadata), X (complete) and i
// (instant) events carrying sane timestamps and identifiers. It is the CI
// gate behind `make trace-verify` — a trace that passes loads in Perfetto.
//
//	traceverify out.json
//	atmsim -duration 2ms -trace - | traceverify -
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	Pid   *int           `json:"pid"`
	Tid   *int           `json:"tid"`
	Cat   string         `json:"cat"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceverify <trace.json | ->")
		os.Exit(2)
	}
	path := os.Args[1]
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		r = f
	}
	var tf traceFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err != nil {
		fail("%s: not a trace-event file: %v", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		fail("%s: traceEvents is empty", path)
	}
	var complete, instant, meta int
	for i, ev := range tf.TraceEvents {
		where := fmt.Sprintf("%s: traceEvents[%d] (%q)", path, i, ev.Name)
		if ev.Name == "" {
			fail("%s: missing name", where)
		}
		if ev.Pid == nil || ev.Tid == nil {
			fail("%s: missing pid/tid", where)
		}
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Ts == nil || *ev.Ts < 0 {
				fail("%s: complete event needs ts >= 0", where)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				fail("%s: complete event needs dur >= 0", where)
			}
		case "i":
			instant++
			if ev.Ts == nil || *ev.Ts < 0 {
				fail("%s: instant event needs ts >= 0", where)
			}
			if ev.Scope != "t" && ev.Scope != "p" && ev.Scope != "g" {
				fail("%s: instant scope %q not in {t,p,g}", where, ev.Scope)
			}
		default:
			fail("%s: unexpected phase %q", where, ev.Phase)
		}
	}
	if complete == 0 {
		fail("%s: no complete (X) span events — nothing was recorded", path)
	}
	fmt.Printf("%s: ok — %d span, %d instant, %d metadata events\n",
		path, complete, instant, meta)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceverify: "+format+"\n", args...)
	os.Exit(1)
}
