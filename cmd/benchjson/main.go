// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary. Each benchmark line
//
//	BenchmarkE1-8   100   12345678 ns/op   4096 B/op   17 allocs/op
//
// becomes an object carrying the benchmark name, iteration count, and every
// value/unit metric pair (ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units). All input lines are echoed to stderr so a piped
// run still shows live progress and results.
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// Delta mode compares two such documents and prints per-metric changes,
// flagging regressions beyond a threshold (default 10%). Cost metrics
// (ns/op, B/op, allocs/op, events/op) regress when they rise; rate metrics
// (MB/s, Mb/s-style, efficiencies, fractions) regress when they fall; other
// custom metrics are reported without a verdict. The exit status is 3 when
// any regression crossed the threshold, so CI can choose to gate or merely
// report:
//
//	benchjson -compare -threshold 10 BENCH.json new.json
//
// With -md the comparison is also written as a GitHub-flavored markdown
// table (suitable for a CI artifact or a PR comment):
//
//	benchjson -compare -md bench-delta.md BENCH.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the whole BENCH.json document.
type Output struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output path (\"-\" for stdout)")
	compare := flag.Bool("compare", false, "compare two BENCH.json files (old new) instead of parsing stdin")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for -compare")
	mdPath := flag.String("md", "", "with -compare: also write the delta as a markdown table here (\"-\" for stdout)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, *mdPath))
	}

	doc := Output{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Benchmark{},
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
		}
		fmt.Fprintln(os.Stderr, line)
		if b, ok := parseLine(pkg, line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	}
}

// metricDir classifies a metric unit: +1 higher-is-better, -1 lower-is-
// better, 0 informational (no regression verdict).
func metricDir(unit string) int {
	switch unit {
	case "ns/op", "B/op", "allocs/op", "events/op":
		return -1
	}
	switch {
	case strings.Contains(unit, "MB/s"), strings.Contains(unit, "Mbps"),
		strings.Contains(unit, "Mb/s"), strings.Contains(unit, "eff"),
		strings.Contains(unit, "frac"), strings.Contains(unit, "jain"):
		return +1
	}
	return 0
}

func loadDoc(path string) (Output, error) {
	var doc Output
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	return doc, json.Unmarshal(data, &doc)
}

// deltaRow is one comparison line: a metric change, or a benchmark that
// only exists on one side (note set, no metric values).
type deltaRow struct {
	Name       string
	Unit       string
	Old, New   float64
	Pct        float64
	Regression bool
	Note       string // "new benchmark" / "removed" / "(was zero)"
}

// runCompare prints the per-metric delta between two BENCH.json documents
// (optionally also as a markdown table) and returns the process exit code:
// 0 clean, 3 when a regression crossed the threshold.
func runCompare(oldPath, newPath string, threshold float64, mdPath string) int {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	rows, regressions := diffDocs(oldDoc, newDoc, threshold)
	for _, r := range rows {
		switch {
		case r.Note == "new benchmark" || r.Note == "removed":
			fmt.Printf("%-40s %s\n", r.Name, r.Note)
		case r.Note == "(was zero)":
			fmt.Printf("%-40s %-14s %12.4g -> %-12.4g (was zero)\n", r.Name, r.Unit, r.Old, r.New)
		default:
			verdict := ""
			if r.Regression {
				verdict = "  REGRESSION"
			}
			fmt.Printf("%-40s %-14s %12.4g -> %-12.4g %+7.1f%%%s\n", r.Name, r.Unit, r.Old, r.New, r.Pct, verdict)
		}
	}
	if mdPath != "" {
		md := markdownDelta(rows, regressions, threshold)
		if mdPath == "-" {
			fmt.Print(md)
		} else if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
	}
	if regressions > 0 {
		fmt.Printf("%d metric(s) regressed beyond %.0f%%\n", regressions, threshold)
		return 3
	}
	return 0
}

// diffDocs walks the two documents in new-doc order and returns the delta
// rows plus the count of threshold-crossing regressions.
func diffDocs(oldDoc, newDoc Output, threshold float64) ([]deltaRow, int) {
	oldBy := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Name] = b
	}
	var rows []deltaRow
	regressions := 0
	for _, nb := range newDoc.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			rows = append(rows, deltaRow{Name: nb.Name, Note: "new benchmark"})
			continue
		}
		units := make([]string, 0, len(nb.Metrics))
		for unit := range nb.Metrics {
			if _, both := ob.Metrics[unit]; both {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, nv := ob.Metrics[unit], nb.Metrics[unit]
			if ov == nv {
				continue
			}
			if ov == 0 {
				rows = append(rows, deltaRow{Name: nb.Name, Unit: unit, Old: ov, New: nv, Note: "(was zero)"})
				continue
			}
			pct := 100 * (nv - ov) / ov
			reg := false
			if dir := metricDir(unit); dir != 0 && pct*float64(-dir) > threshold {
				reg = true
				regressions++
			}
			rows = append(rows, deltaRow{Name: nb.Name, Unit: unit, Old: ov, New: nv, Pct: pct, Regression: reg})
		}
	}
	for _, ob := range oldDoc.Benchmarks {
		found := false
		for _, nb := range newDoc.Benchmarks {
			if nb.Name == ob.Name {
				found = true
				break
			}
		}
		if !found {
			rows = append(rows, deltaRow{Name: ob.Name, Note: "removed"})
		}
	}
	return rows, regressions
}

// markdownDelta renders the delta rows as a GitHub-flavored markdown table.
func markdownDelta(rows []deltaRow, regressions int, threshold float64) string {
	var sb strings.Builder
	sb.WriteString("# Benchmark delta\n\n")
	if len(rows) == 0 {
		sb.WriteString("No metric changes.\n")
		return sb.String()
	}
	sb.WriteString("| Benchmark | Metric | Old | New | Δ | |\n")
	sb.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		switch {
		case r.Note == "new benchmark" || r.Note == "removed":
			fmt.Fprintf(&sb, "| `%s` | | | | | %s |\n", r.Name, r.Note)
		case r.Note == "(was zero)":
			fmt.Fprintf(&sb, "| `%s` | %s | %.4g | %.4g | | was zero |\n", r.Name, r.Unit, r.Old, r.New)
		default:
			flag := ""
			if r.Regression {
				flag = "⚠️ regression"
			}
			fmt.Fprintf(&sb, "| `%s` | %s | %.4g | %.4g | %+.1f%% | %s |\n", r.Name, r.Unit, r.Old, r.New, r.Pct, flag)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(&sb, "\n**%d metric(s) regressed beyond %.0f%%.**\n", regressions, threshold)
	} else {
		fmt.Fprintf(&sb, "\nNo regressions beyond %.0f%%.\n", threshold)
	}
	return sb.String()
}

// parseLine parses one `BenchmarkName-N  iters  v unit  v unit …` line.
func parseLine(pkg, line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: f[0], Iterations: iters,
		Metrics: make(map[string]float64, (len(f)-2)/2)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
