// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary. Each benchmark line
//
//	BenchmarkE1-8   100   12345678 ns/op   4096 B/op   17 allocs/op
//
// becomes an object carrying the benchmark name, iteration count, and every
// value/unit metric pair (ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units). All input lines are echoed to stderr so a piped
// run still shows live progress and results.
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the whole BENCH.json document.
type Output struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output path (\"-\" for stdout)")
	flag.Parse()

	doc := Output{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Benchmark{},
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
		}
		fmt.Fprintln(os.Stderr, line)
		if b, ok := parseLine(pkg, line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	}
}

// parseLine parses one `BenchmarkName-N  iters  v unit  v unit …` line.
func parseLine(pkg, line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: f[0], Iterations: iters,
		Metrics: make(map[string]float64, (len(f)-2)/2)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
