package main

import (
	"os"
	"testing"
	"time"
)

// Smoke-test every architecture/workload combination the CLI exposes, at
// tiny simulated durations.
func TestRunCombinations(t *testing.T) {
	cases := []struct {
		name          string
		rate          int
		aal, arch, wl string
		size          int
		loss          float64
		rxEngines     int
		interleave    bool
	}{
		{"default", 155, "5", "engine", "fixed", 9180, 0, 1, false},
		{"aal34", 155, "3/4", "engine", "fixed", 4000, 0, 1, false},
		{"622", 622, "5", "engine", "fixed", 1024, 0, 1, false},
		{"hardwired", 155, "5", "hardwired", "fixed", 9180, 0, 1, false},
		{"percell", 155, "5", "percell", "fixed", 1000, 0, 1, false},
		{"bimodal", 155, "5", "engine", "bimodal", 0, 0, 1, false},
		{"bursty", 155, "5", "engine", "bursty", 2000, 0, 1, false},
		{"cbr", 155, "5", "engine", "cbr", 8000, 0, 1, false},
		{"lossy", 155, "5", "engine", "fixed", 4000, 1e-3, 1, false},
		{"multiengine", 622, "5", "engine", "fixed", 9180, 0, 3, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.rate, c.aal, c.arch, c.size, c.wl,
				3*time.Millisecond, c.loss, 2, 1, c.rxEngines, c.interleave, 0, "", false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(100, "5", "engine", 100, "fixed", time.Millisecond, 0, 1, 1, 1, false, 0, "", false); err == nil {
		t.Fatal("bad rate accepted")
	}
	if err := run(155, "7", "engine", 100, "fixed", time.Millisecond, 0, 1, 1, 1, false, 0, "", false); err == nil {
		t.Fatal("bad AAL accepted")
	}
	if err := run(155, "5", "warp", 100, "fixed", time.Millisecond, 0, 1, 1, 1, false, 0, "", false); err == nil {
		t.Fatal("bad arch accepted")
	}
	if err := run(155, "5", "engine", 100, "telepathy", time.Millisecond, 0, 1, 1, 1, false, 0, "", false); err == nil {
		t.Fatal("bad workload accepted")
	}
	if err := run(155, "5", "percell", 100, "fixed", time.Millisecond, 0, 1, 1, 1, false, 0, "x.json", false); err == nil {
		t.Fatal("percell + -metrics accepted")
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run(155, "5", "engine", 500, "fixed", 2*time.Millisecond, 0, 1, 1, 1, false, 3, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMetrics(t *testing.T) {
	path := t.TempDir() + "/metrics.json"
	if err := run(155, "5", "engine", 9180, "fixed", 3*time.Millisecond, 0, 2, 1, 1, false, 0, path, true); err != nil {
		t.Fatal(err)
	}
	// The snapshot must exist and be non-trivial; its shape is covered by
	// the metrics package tests.
	fi, err := os.Stat(path)
	if err != nil || fi.Size() < 1000 {
		t.Fatalf("snapshot file: %+v, err %v", fi, err)
	}
}
