package main

import (
	"os"
	"testing"
	"time"
)

// Smoke-test every architecture/workload combination the CLI exposes, at
// tiny simulated durations.
func TestRunCombinations(t *testing.T) {
	cases := []struct {
		name          string
		rate          int
		aal, arch, wl string
		size          int
		loss          float64
		rxEngines     int
		interleave    bool
	}{
		{"default", 155, "5", "engine", "fixed", 9180, 0, 1, false},
		{"aal34", 155, "3/4", "engine", "fixed", 4000, 0, 1, false},
		{"622", 622, "5", "engine", "fixed", 1024, 0, 1, false},
		{"hardwired", 155, "5", "hardwired", "fixed", 9180, 0, 1, false},
		{"percell", 155, "5", "percell", "fixed", 1000, 0, 1, false},
		{"bimodal", 155, "5", "engine", "bimodal", 0, 0, 1, false},
		{"bursty", 155, "5", "engine", "bursty", 2000, 0, 1, false},
		{"cbr", 155, "5", "engine", "cbr", 8000, 0, 1, false},
		{"lossy", 155, "5", "engine", "fixed", 4000, 1e-3, 1, false},
		{"multiengine", 622, "5", "engine", "fixed", 9180, 0, 3, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.rate, c.aal, c.arch, c.size, c.wl,
				3*time.Millisecond, c.loss, 2, 1, c.rxEngines, c.interleave, 0, "", false, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(100, "5", "engine", 100, "fixed", time.Millisecond, 0, 1, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("bad rate accepted")
	}
	if err := run(155, "7", "engine", 100, "fixed", time.Millisecond, 0, 1, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("bad AAL accepted")
	}
	if err := run(155, "5", "warp", 100, "fixed", time.Millisecond, 0, 1, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("bad arch accepted")
	}
	if err := run(155, "5", "engine", 100, "telepathy", time.Millisecond, 0, 1, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("bad workload accepted")
	}
	if err := run(155, "5", "percell", 100, "fixed", time.Millisecond, 0, 1, 1, 1, false, 0, "x.json", false, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("percell + -metrics accepted")
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run(155, "5", "engine", 500, "fixed", 2*time.Millisecond, 0, 1, 1, 1, false, 3, "", false, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMetrics(t *testing.T) {
	path := t.TempDir() + "/metrics.json"
	if err := run(155, "5", "engine", 9180, "fixed", 3*time.Millisecond, 0, 2, 1, 1, false, 0, path, true, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// The snapshot must exist and be non-trivial; its shape is covered by
	// the metrics package tests.
	fi, err := os.Stat(path)
	if err != nil || fi.Size() < 1000 {
		t.Fatalf("snapshot file: %+v, err %v", fi, err)
	}
}

func TestRunTrafficManagement(t *testing.T) {
	// Shaped + policed: the contract round-trips through the switch.
	if err := run(155, "5", "engine", 4000, "fixed", 3*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "150000,50000,32", true, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// CBR one-field contract with EPD on the switch.
	if err := run(155, "5", "engine", 1000, "fixed", 2*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "100000", false, 48, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// EPD alone still routes through the switch.
	if err := run(155, "5", "engine", 1000, "fixed", 2*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 32, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// -police without -contract is refused.
	if err := run(155, "5", "engine", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", true, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("police without contract accepted")
	}
	// Malformed contracts are refused.
	for _, bad := range []string{"abc", "1,2", "150000,50000,32,9", "-5"} {
		if err := run(155, "5", "engine", 1000, "fixed", time.Millisecond,
			0, 1, 1, 1, false, 0, "", false, bad, false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
			t.Fatalf("contract %q accepted", bad)
		}
	}
	// percell rejects the TM flags.
	if err := run(155, "5", "percell", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "100000", false, 0, false, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("percell + -contract accepted")
	}
}

func TestRunWithObservability(t *testing.T) {
	dir := t.TempDir()
	obs := obsOpts{
		TracePath:    dir + "/trace.json",
		TraceSample:  1,
		SamplePeriod: 100 * time.Microsecond,
		SamplePath:   dir + "/samples.csv",
	}
	if err := run(155, "5", "engine", 9180, "fixed", 2*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0, lineOpts{}, obs); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{obs.TracePath, obs.SamplePath} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("observability output %s: %+v, err %v", p, fi, err)
		}
	}
	// percell has no recorder hooks or registry to sample.
	if err := run(155, "5", "percell", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0,
		lineOpts{}, obsOpts{TracePath: dir + "/t2.json", TraceSample: 1}); err == nil {
		t.Fatal("percell + -trace accepted")
	}
}

func TestRunFaultInjection(t *testing.T) {
	// Cut and repair the fiber mid-run with the reassembly GC on.
	if err := run(155, "5", "engine", 9180, "fixed", 5*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 0, false,
		time.Millisecond, 2*time.Millisecond, 500*time.Microsecond, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// With a switch in the path, the cut moves to its egress link.
	if err := run(155, "5", "engine", 1000, "fixed", 3*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 32, false,
		time.Millisecond, 2*time.Millisecond, 0, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// percell has no fault plane.
	if err := run(155, "5", "percell", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", false, 0, false,
		time.Millisecond, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("percell + -kill accepted")
	}
}

func TestRunTCPFlow(t *testing.T) {
	// A bounded Reno transfer completes and prints its summary.
	if err := run(155, "5", "engine", 9180, "fixed", 20*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 200_000, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// TCP through the EPD switch path exercises the duplex reverse route.
	if err := run(155, "5", "engine", 9180, "fixed", 10*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 48, false, 0, 0, 0, 50_000, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// percell has no IP stack to bind.
	if err := run(155, "5", "percell", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 1000, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("percell + -tcp accepted")
	}
}

func TestRunFramedLine(t *testing.T) {
	// The full SONET path, serial and burst receive recovery: both complete.
	for _, line := range []lineOpts{{Framed: true}, {Framed: true, Burst: true}} {
		if err := run(155, "5", "engine", 9180, "fixed", 3*time.Millisecond,
			0, 2, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0, line, obsOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	// Bit errors ride the framed line; cutting it exercises the SONET fault plane.
	if err := run(155, "5", "engine", 9180, "fixed", 5*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 0, false,
		time.Millisecond, 2*time.Millisecond, 500*time.Microsecond, 0,
		lineOpts{Framed: true, BitErrProb: 1e-6}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// -biterr needs -framed.
	if err := run(155, "5", "engine", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0,
		lineOpts{BitErrProb: 1e-6}, obsOpts{}); err == nil {
		t.Fatal("-biterr without -framed accepted")
	}
	// Framed lines are endpoint-to-endpoint: the EPD switch path is refused.
	if err := run(155, "5", "engine", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", false, 32, false, 0, 0, 0, 0,
		lineOpts{Framed: true}, obsOpts{}); err == nil {
		t.Fatal("framed + -epd accepted")
	}
	// percell has no SONET framer to speak through.
	if err := run(155, "5", "percell", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", false, 0, false, 0, 0, 0, 0,
		lineOpts{Framed: true}, obsOpts{}); err == nil {
		t.Fatal("percell + -framed accepted")
	}
}

func TestRunABR(t *testing.T) {
	// The closed loop on the two-station topology: source, ERICA+EFCI
	// switch, turnaround destination.
	if err := run(155, "5", "engine", 9180, "fixed", 5*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 0, true, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// -abr composes with -epd: the switch carries both thresholds.
	if err := run(155, "5", "engine", 9180, "fixed", 5*time.Millisecond,
		0, 2, 1, 1, false, 0, "", false, "", false, 48, true, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err != nil {
		t.Fatal(err)
	}
	// ABR supersedes an explicit contract; the combination is refused.
	if err := run(155, "5", "engine", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "100000", false, 0, true, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("-abr + -contract accepted")
	}
	// percell has no RM plane; framed lines cannot host the switch.
	if err := run(155, "5", "percell", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", false, 0, true, 0, 0, 0, 0, lineOpts{}, obsOpts{}); err == nil {
		t.Fatal("percell + -abr accepted")
	}
	if err := run(155, "5", "engine", 1000, "fixed", time.Millisecond,
		0, 1, 1, 1, false, 0, "", false, "", false, 0, true, 0, 0, 0, 0, lineOpts{Framed: true}, obsOpts{}); err == nil {
		t.Fatal("framed + -abr accepted")
	}
}
