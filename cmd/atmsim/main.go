// Command atmsim runs a configurable end-to-end simulation of two
// workstations with the SIGCOMM '91 host interface, and prints a summary of
// what every component did. It is the exploratory companion to atmbench's
// fixed experiments.
//
//	atmsim -rate 622 -aal 3/4 -size 9180 -duration 50ms -loss 1e-4
//	atmsim -workload bimodal -duration 100ms
//	atmsim -arch percell -size 1000     # the per-cell-interrupt baseline
//	atmsim -contract 150000,50000,32 -police    # shaped VC through a policing switch
//	atmsim -size 1000 -epd 48                   # early packet discard at the switch
//	atmsim -rate 622 -abr -duration 100ms       # ABR closed loop through an ERICA switch
//	atmsim -kill 10ms -restore 25ms -rtimeout 1ms   # cut and repair the a->b fiber
//	atmsim -trace out.json                      # Perfetto trace of every hop
//	atmsim -sample 100us -sampleout series.csv  # periodic telemetry time series
//	atmsim -tcp 1000000 -duration 200ms         # TCP Reno transfer over RFC 2684
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	rate := flag.Int("rate", 155, "link rate: 155 or 622")
	aalFlag := flag.String("aal", "5", "adaptation layer: 5 or 3/4")
	arch := flag.String("arch", "engine", "architecture: engine, hardwired, percell")
	size := flag.Int("size", 9180, "packet size for fixed workload (bytes)")
	wl := flag.String("workload", "fixed", "workload: fixed, bimodal, bursty, cbr")
	duration := flag.Duration("duration", 50*time.Millisecond, "simulated duration")
	loss := flag.Float64("loss", 0, "cell loss probability")
	window := flag.Int("window", 4, "packets in flight (fixed workload)")
	seed := flag.Uint64("seed", 1, "random seed")
	rxEngines := flag.Int("rxengines", 1, "parallel receive engines")
	interleave := flag.Bool("interleave", false, "interleave VCs on transmit")
	dumpN := flag.Int("dump", 0, "dump the first N cells on the a->b fiber")
	tracePath := flag.String("trace", "", "record a cell-journey flight trace and write Perfetto/Chrome trace-event JSON to this file (\"-\" for stdout)")
	traceSample := flag.Int("tracesample", 1, "with -trace: record every Nth cell per stage and VC (1 = all)")
	samplePeriod := flag.Duration("sample", 0, "snapshot all registry counters/gauges every period of simulated time (0 = off)")
	samplePath := flag.String("sampleout", "samples.csv", "with -sample: write the time series here (.json for JSON, else CSV; \"-\" for CSV on stdout)")
	metricsPath := flag.String("metrics", "", "write a JSON telemetry snapshot to this file (\"-\" for stdout)")
	stats := flag.Bool("stats", false, "print the full telemetry table after the run")
	contract := flag.String("contract", "", "shape a's VC to a traffic contract: \"pcr\" (CBR, cells/s) or \"pcr,scr,mbs\" (rt-VBR)")
	police := flag.Bool("police", false, "route through a 155 Mb/s switch whose ingress polices -contract (tagging SCR violators)")
	epd := flag.Int("epd", 0, "route through a 155 Mb/s switch with early packet discard above this queue depth (0 = off; congests with -rate 622)")
	abr := flag.Bool("abr", false, "run the VCC as an ABR connection: route through a 155 Mb/s switch running ERICA explicit-rate feedback and EFCI marking, with the source rate steered by RM cells (congests with -rate 622; incompatible with -contract)")
	kill := flag.Duration("kill", 0, "cut the a->b fiber at this simulated time (0 = never); alarm events print as they fire")
	restore := flag.Duration("restore", 0, "restore the cut fiber at this simulated time (0 = stays dark)")
	rtimeout := flag.Duration("rtimeout", 0, "reassembly staleness timeout: partial frames idle this long are aborted and their adapter buffers reclaimed (0 = off)")
	tcpBytes := flag.Int("tcp", 0, "replace the raw workload with a TCP Reno bulk transfer of this many bytes over RFC 2684 LLC/SNAP (0 = off)")
	framed := flag.Bool("framed", false, "carry the a<->b fiber through the full SONET physical layer (framing, scrambling, HEC delineation) instead of the cell-granular shortcut; direct topology only")
	burst := flag.Bool("burst", false, "batched cell-vector receive recovery on the SONET path (implies -framed); delivery is golden-identical to the serial path, just cheaper")
	biterr := flag.Float64("biterr", 0, "with -framed: probability each frame suffers one random line bit error")
	flag.Parse()

	obs := obsOpts{
		TracePath:    *tracePath,
		TraceSample:  *traceSample,
		SamplePeriod: *samplePeriod,
		SamplePath:   *samplePath,
	}
	line := lineOpts{Framed: *framed || *burst, Burst: *burst, BitErrProb: *biterr}
	if err := run(*rate, *aalFlag, *arch, *size, *wl, *duration, *loss, *window, *seed, *rxEngines, *interleave, *dumpN, *metricsPath, *stats, *contract, *police, *epd, *abr, *kill, *restore, *rtimeout, *tcpBytes, line, obs); err != nil {
		fmt.Fprintln(os.Stderr, "atmsim:", err)
		os.Exit(1)
	}
}

// obsOpts bundles the observability flags: flight-recorder trace export and
// the periodic telemetry sampler.
type obsOpts struct {
	TracePath    string
	TraceSample  int
	SamplePeriod time.Duration
	SamplePath   string
}

// lineOpts bundles the physical-layer flags: SONET framing on the a<->b
// fiber, burst-mode receive recovery, and line bit errors.
type lineOpts struct {
	Framed     bool
	Burst      bool
	BitErrProb float64
}

func run(rate int, aalFlag, arch string, size int, wl string, duration time.Duration,
	loss float64, window int, seed uint64, rxEngines int, interleave bool, dumpN int,
	metricsPath string, stats bool, contractSpec string, police bool, epd int, abr bool,
	kill, restore, rtimeout time.Duration, tcpBytes int, line lineOpts, obs obsOpts) error {
	deadline := sim.Time(duration.Nanoseconds())

	payloadRate := units.STS3cPayload
	if rate == 622 {
		payloadRate = units.STS12cPayload
	} else if rate != 155 {
		return fmt.Errorf("unknown rate %d (use 155 or 622)", rate)
	}
	aalType := aal.AAL5
	if aalFlag == "3/4" || aalFlag == "34" {
		aalType = aal.AAL34
	} else if aalFlag != "5" {
		return fmt.Errorf("unknown AAL %q (use 5 or 3/4)", aalFlag)
	}
	var contract tm.TrafficContract
	haveContract := contractSpec != ""
	if haveContract {
		var err error
		if contract, err = parseContract(contractSpec, units.CellTime(payloadRate)); err != nil {
			return err
		}
	}
	if police && !haveContract {
		return fmt.Errorf("-police needs -contract to know what to enforce")
	}
	if abr && haveContract {
		return fmt.Errorf("-abr derives its own ABR contract; drop -contract")
	}
	if line.Framed {
		if police || epd > 0 || abr {
			return fmt.Errorf("-framed/-burst need the direct a<->b topology (switch ports are cell-granular)")
		}
		if loss != 0 {
			return fmt.Errorf("-loss is cell-granular; on the SONET path use -biterr")
		}
		if dumpN > 0 {
			return fmt.Errorf("-dump taps the cell-granular fiber; not available with -framed/-burst")
		}
	} else if line.BitErrProb != 0 {
		return fmt.Errorf("-biterr needs -framed (or -burst)")
	}

	if arch == "percell" {
		if metricsPath != "" || stats {
			return fmt.Errorf("-metrics/-stats are not supported with -arch percell")
		}
		if haveContract || police || epd > 0 || abr {
			return fmt.Errorf("-contract/-police/-epd/-abr are not supported with -arch percell")
		}
		if kill > 0 || rtimeout > 0 {
			return fmt.Errorf("-kill/-rtimeout are not supported with -arch percell")
		}
		if obs.TracePath != "" || obs.SamplePeriod > 0 {
			return fmt.Errorf("-trace/-sample are not supported with -arch percell")
		}
		if tcpBytes > 0 {
			return fmt.Errorf("-tcp is not supported with -arch percell")
		}
		if line.Framed {
			return fmt.Errorf("-framed/-burst are not supported with -arch percell")
		}
		return runBaseline(sim.NewKernel(), payloadRate, aalType, size, deadline, loss, seed)
	}
	if arch != "engine" && arch != "hardwired" {
		return fmt.Errorf("unknown arch %q", arch)
	}

	// The whole topology is one declarative spec: two stations, optionally a
	// policing/discarding switch between them, and a single latency-tapped
	// VCC end to end. Both stations record into one registry; instrument
	// names carry the station name ("a.nic.tx.cells"), per-VC rows are
	// shared so one row shows a connection end to end.
	opts := core.Options{
		Rate:              payloadRate,
		AAL34:             aalType == aal.AAL34,
		RxEngines:         rxEngines,
		InterleaveVCs:     interleave,
		Hardwired:         arch == "hardwired",
		ReassemblyTimeout: sim.Duration(rtimeout.Nanoseconds()),
	}
	reg := metrics.NewRegistry()
	var rec *trace.Recorder
	k0 := sim.NewKernel()
	if obs.TracePath != "" {
		// 1M events ≈ 40 MB: enough for tens of thousands of cell
		// journeys; wraparound keeps the most recent window and the
		// export notes the truncation.
		rec = trace.NewRecorder(k0, 1<<20)
		rec.SampleCells(obs.TraceSample)
	}
	spec := core.NetworkSpec{
		Metrics:   reg,
		Kernel:    k0,
		Recorder:  rec,
		BurstMode: line.Burst,
		Endpoints: []core.EndpointSpec{
			{Name: "a", Options: opts},
			{Name: "b", Options: opts},
		},
		VCCs: []core.VCCSpec{{
			Name: "ab", From: "a", To: "b", VC: stdVC(),
			// The latency tap hooks the cell-granular fiber; the framed
			// path has no per-cell wire to hook.
			Contract: contract, Shape: haveContract, Latency: !line.Framed,
			// TCP needs the ACK path back from b to a; ABR needs it for the
			// backward RM cells.
			Duplex: tcpBytes > 0 || abr,
		}},
	}
	// EFCI marks above this queue depth on the ABR bottleneck port.
	const abrEFCI = 32
	if abr {
		spec.VCCs[0].ABR = &tm.ABRParams{PCR: units.CellRate(payloadRate)}
	}
	if police || epd > 0 || abr {
		// a -> fiber -> switch -> b: the switch polices a's cells at its
		// ingress and/or runs early packet discard on its output queue.
		// The port always drains at STS-3c: with matched rates the queue
		// never builds, so a 622 Mb/s sender into the 155 Mb/s port is how
		// to congest it.
		sw := core.SwitchSpec{Name: "sw", Ports: 2, Rate: units.STS3cPayload, QueueDepth: 64}
		if abr {
			sw.EFCIThreshold = abrEFCI
			sw.ERICA = &netsim.ERICAConfig{} // defaults: 0.9 target, 500 µs interval
		}
		spec.Switches = []core.SwitchSpec{sw}
		spec.Links = []core.LinkSpec{
			{Name: "a-sw", A: core.NodeRef{Node: "a"}, B: core.NodeRef{Node: "sw", Port: 0},
				Delay: 10_000, LossProb: loss, Seed: seed},
			{Name: "sw-b", A: core.NodeRef{Node: "sw", Port: 1}, B: core.NodeRef{Node: "b"},
				Seed: seed + 1000},
		}
	} else {
		spec.Links = []core.LinkSpec{
			{Name: "ab", A: core.NodeRef{Node: "a"}, B: core.NodeRef{Node: "b"},
				Delay: 10_000, LossProb: loss, Seed: seed,
				Framed: line.Framed, BitErrProb: line.BitErrProb},
		}
	}
	net, err := core.NewNetwork(spec)
	if err != nil {
		return err
	}
	k := net.Kernel()
	a, b := net.Endpoint("a"), net.Endpoint("b")
	vcc := net.VCC("ab")
	capture := vcc.Capture
	if dumpN > 0 {
		capture.Limit = dumpN
		capture.Filter = nil
	}
	var sampler *trace.Sampler
	if obs.SamplePeriod > 0 {
		sampler = trace.NewSampler(k, reg, sim.Duration(obs.SamplePeriod.Nanoseconds()))
		sampler.Start(deadline)
	}
	var sw *netsim.Switch
	var pol *tm.Policer
	if police || epd > 0 || abr {
		sw = net.Switch("sw")
		if police {
			pol = tm.NewPolicer(contract)
			pol.TagSCR = true
			hop := vcc.Hops[0]
			sw.SetPolicer(hop.InPort, hop.InVC, pol)
		}
		if epd > 0 {
			efci := 0
			if abr {
				efci = abrEFCI // keep the spec's EFCI marking alongside EPD
			}
			sw.SetThresholds(vcc.Hops[0].OutPort, 0, epd, efci)
		}
	}

	// Fault plane: alarm transitions print as they reach each host, and the
	// a->b fiber (its last hop, when a switch is in the path) can be cut and
	// repaired on schedule.
	if kill > 0 || rtimeout > 0 {
		onAlarm := func(who string) func(nic.AlarmEvent) {
			return func(ev nic.AlarmEvent) {
				fmt.Printf("t=%-12v %s: %v\n", ev.At, who, ev)
			}
		}
		a.OnAlarm(onAlarm("a"))
		b.OnAlarm(onAlarm("b"))
	}
	if kill > 0 {
		linkName := "ab"
		if police || epd > 0 {
			linkName = "sw-b"
		}
		lk := net.Link(linkName)
		failFn, restoreFn := lk.Fwd.Fail, lk.Fwd.Restore
		if lk.Framed != nil {
			failFn, restoreFn = lk.Framed.AtoB.Fail, lk.Framed.AtoB.Restore
		}
		k.At(sim.Time(kill.Nanoseconds()), func() {
			fmt.Printf("t=%-12v fiber %s cut\n", k.Now(), linkName)
			failFn()
		})
		if restore > 0 {
			k.At(sim.Time(restore.Nanoseconds()), func() {
				fmt.Printf("t=%-12v fiber %s restored\n", k.Now(), linkName)
				restoreFn()
			})
		}
	}

	var gen workload.Generator
	switch wl {
	case "fixed":
		gen = &workload.Fixed{Size: size}
	case "bimodal":
		gen = workload.NewBimodalIP(seed, 200*sim.Microsecond)
	case "bursty":
		gen = workload.NewOnOff(seed, size, 500*sim.Microsecond, 2*sim.Millisecond, 50*sim.Microsecond)
	case "cbr":
		gen = &workload.CBR{FrameSize: size, Period: sim.Duration(duration.Nanoseconds() / 100)}
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}

	sent := 0
	var flow *tcp.Flow
	if tcpBytes > 0 {
		// A Reno source at a, sink at b: IP datagrams ride the VCC under
		// RFC 2684 LLC/SNAP, ACKs return on the duplex reverse path. The
		// flow's cwnd/ssthresh gauges land in the registry, so -sample
		// captures the congestion window trace.
		stackA := ip.NewStack(a.Interface(), ip.LLCSnap, ip.Addr{10, 0, 0, 1})
		stackB := ip.NewStack(b.Interface(), ip.LLCSnap, ip.Addr{10, 0, 0, 2})
		flow = tcp.NewFlow(k, "ab", stackA, vcc.SourceVC, stackB, vcc.DestVC, tcp.Config{})
		flow.Instrument(reg)
		flow.Start(uint64(tcpBytes), nil)
	} else if wl == "fixed" {
		var send func()
		send = func() {
			if k.Now() > deadline {
				return
			}
			sz, _ := gen.Next()
			a.Send(vcc.SourceVC, make([]byte, sz), send)
			sent++
		}
		for i := 0; i < window; i++ {
			send()
		}
	} else {
		var tick func()
		tick = func() {
			if k.Now() > deadline {
				return
			}
			sz, gap := gen.Next()
			a.Send(vcc.SourceVC, make([]byte, sz), nil)
			sent++
			k.After(gap, tick)
		}
		tick()
	}

	k.RunUntil(deadline)
	// Snapshot at the deadline so the drain phase neither dilutes the
	// utilizations nor inflates the delivered-within-window goodput.
	utilA, utilB := a.Host().Utilization(), b.Host().Utilization()
	txU, rxU := a.Interface().TxEngine().Utilization(), b.Interface().RxEngine().Utilization()
	st := b.Stats()
	var tcpSt tcp.SenderStats
	var tcpDelivered uint64
	if flow != nil {
		tcpSt = flow.Sender.Stats()
		tcpDelivered = flow.Delivered()
		sent = int(tcpSt.Segments)
		flow.Stop()
	}
	k.Run()
	wlName := gen.Name()
	if flow != nil {
		wlName = fmt.Sprintf("tcp %d bytes", tcpBytes)
	}
	phys := ""
	if line.Framed {
		phys = ", sonet-framed"
		if line.Burst {
			phys = ", sonet-framed (burst recovery)"
		}
	}
	fmt.Printf("architecture      %s, %v, %s%s, workload %s\n", arch, payloadRate, aalType, phys, wlName)
	fmt.Printf("simulated time    %v\n", k.Now())
	fmt.Printf("packets sent      %d\n", sent)
	fmt.Printf("packets delivered %d  (%d bytes)\n", st.Rx.Packets, st.Rx.Bytes)
	fmt.Printf("goodput           %.2f Mb/s\n", units.ThroughputBps(int64(st.Rx.Bytes), deadline)/1e6)
	fmt.Printf("aal errors        %d   rx fifo drops %d   unknown-vc %d\n",
		st.Rx.AALErrors, st.Rx.FifoDrops, st.Rx.UnknownVC)
	fmt.Printf("host cpu          tx-side %.1f%%   rx-side %.1f%%   rx interrupts %d\n",
		100*utilA, 100*utilB, b.Host().Interrupts())
	fmt.Printf("engines           tx %.1f%%   rx %.1f%%\n", 100*txU, 100*rxU)
	fmt.Printf("adapter sram peak %d bytes\n", st.SRAMPeak)
	fmt.Printf("link a->b         sent %d cells\n", st.Rx.Cells)
	if flow != nil {
		fmt.Printf("tcp               delivered %d/%d bytes  goodput %.2f Mb/s  segments %d\n",
			tcpDelivered, tcpBytes,
			units.ThroughputBps(int64(tcpDelivered), deadline)/1e6, tcpSt.Segments)
		fmt.Printf("tcp sender        cwnd %d  srtt %v  retx %d (fast %d)  timeouts %d\n",
			flow.Sender.Cwnd(), flow.Sender.SRTT(),
			tcpSt.Retransmits, tcpSt.FastRetransmits, tcpSt.Timeouts)
	}
	if haveContract {
		fmt.Printf("contract          %v (shaping at a)\n", contract)
	}
	if abr {
		acr, _ := a.Interface().ACR(vcc.SourceVC)
		sws := sw.Stats()
		fmt.Printf("abr               acr %.0f c/s (pcr %.0f)  frm %d  turned %d  brm %d\n",
			acr, units.CellRate(payloadRate),
			reg.Counter("a.nic.abr.frm_tx").Value(),
			reg.Counter("b.nic.abr.turnaround").Value(),
			reg.Counter("a.nic.abr.brm_rx").Value())
		fmt.Printf("switch abr        efci marked %d  er stamped %d\n", sws.EFCIMarked, sws.ERStamped)
	}
	if pol != nil {
		ps := pol.Stats()
		fmt.Printf("policer           %d cells: %d conform, %d tagged, %d discarded\n",
			ps.Cells, ps.Conformed, ps.Tagged, ps.Discarded)
	}
	if kill > 0 || rtimeout > 0 {
		fmA, fmB := a.Interface().FMStats(), b.Interface().FMStats()
		fmt.Printf("fault mgmt        b: %d ais rx, %d rdi tx, %d alarm events; a: %d rdi rx; stale frames reclaimed %d\n",
			fmB.AISRx, fmB.RDITx, fmB.Events, fmA.RDIRx, st.Rx.Stale)
	}
	if sw != nil {
		sws := sw.Stats()
		fmt.Printf("switch            routed %d  dropped %d  epd %d frames/%d cells  ppd %d cells\n",
			sws.Routed, sws.Dropped, sws.EPDFrames, sws.EPDCells, sws.PPDCells)
	}
	if dumpN > 0 {
		fmt.Println("\nfirst cells on the a->b fiber:")
		if err := capture.Dump(os.Stdout); err != nil {
			return err
		}
		sum := capture.Summary()
		for _, vs := range sum.PerVC {
			fmt.Printf("vc %v: %d cells, %d frames, mean gap %v\n",
				vs.VC, vs.Cells, vs.Frames, vs.MeanGap)
		}
		if sum.Overflowed > 0 {
			fmt.Printf("capture truncated: %d stored, %d further matches dropped\n",
				sum.Stored, sum.Overflowed)
		}
	}
	snap := reg.Snapshot()
	if stats {
		fmt.Println()
		if err := snap.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if metricsPath == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(metricsPath, data, 0o644)
		}
		if err != nil {
			return err
		}
	}
	if rec != nil {
		fmt.Println()
		if err := rec.WriteBreakdown(os.Stdout); err != nil {
			return err
		}
		if err := writeTo(obs.TracePath, rec.WriteTraceJSON); err != nil {
			return err
		}
		if obs.TracePath != "-" {
			fmt.Printf("\ntrace: %d events (%d evicted) -> %s\n", rec.Len(), rec.Evicted(), obs.TracePath)
		}
	}
	if sampler != nil {
		write := sampler.WriteCSV
		if strings.HasSuffix(obs.SamplePath, ".json") {
			write = sampler.WriteJSON
		}
		if err := writeTo(obs.SamplePath, write); err != nil {
			return err
		}
		if obs.SamplePath != "-" {
			fmt.Printf("%s -> %s\n", sampler, obs.SamplePath)
		}
	}
	return nil
}

// writeTo streams fn's output to a file, or to stdout for "-".
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runBaseline(k *sim.Kernel, rate units.BitRate, aalType aal.Type, size int,
	deadline sim.Time, loss float64, seed uint64) error {
	cfg := baseline.DefaultConfig()
	cfg.PayloadRate = rate
	cfg.AAL = aalType
	a := netsim.NewBaselineStation(k, "a", cfg)
	b := netsim.NewBaselineStation(k, "b", cfg)
	netsim.ConnectBaseline(k, a, b, netsim.LinkConfig{Delay: 10_000, LossProb: loss, Seed: seed})
	b.Adapter.OpenVC(stdVC())
	sent := 0
	var send func()
	send = func() {
		if k.Now() > deadline {
			return
		}
		a.Adapter.Send(stdVC(), make([]byte, size), send)
		sent++
	}
	send()
	k.RunUntil(deadline)
	utilB := b.Host.Utilization()
	st := b.Adapter.Stats()
	k.Run()
	fmt.Printf("architecture      percell (host SAR), %v, %s\n", rate, aalType)
	fmt.Printf("packets sent      %d\n", sent)
	fmt.Printf("packets delivered %d  (%d bytes)\n", st.RxPackets, st.RxBytes)
	fmt.Printf("goodput           %.2f Mb/s\n", units.ThroughputBps(int64(st.RxBytes), deadline)/1e6)
	fmt.Printf("aal errors        %d   rx drops %d\n", st.AALErrors, st.RxDrops)
	fmt.Printf("rx host cpu       %.1f%%   interrupts %d\n", 100*utilB, b.Host.Interrupts())
	return nil
}

// parseContract turns "pcr" (CBR) or "pcr,scr,mbs" (rt-VBR) into a traffic
// contract. CDVT is fixed at a few cell times — enough slack for the cell
// clock quantization the TX FIFO adds downstream of the shaper.
func parseContract(spec string, cellTime sim.Duration) (tm.TrafficContract, error) {
	parts := strings.Split(spec, ",")
	nums := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return tm.TrafficContract{}, fmt.Errorf("bad -contract %q: %v", spec, err)
		}
		nums[i] = v
	}
	cdvt := 8 * cellTime
	var c tm.TrafficContract
	switch len(nums) {
	case 1:
		c = tm.CBRContract(nums[0], cdvt)
	case 3:
		c = tm.VBRContract(nums[0], nums[1], int(nums[2]), cdvt)
	default:
		return c, fmt.Errorf("bad -contract %q: want \"pcr\" or \"pcr,scr,mbs\"", spec)
	}
	return c, c.Validate()
}

func stdVC() atm.VC { return atm.VC{VCI: 100} }
