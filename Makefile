GO ?= go

.PHONY: all build test bench bench-compare verify fmt fmt-check vet staticcheck trace-verify cover-tcpip

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs every benchmark and distills the results into BENCH.json
# (name, iterations, ns/op, B/op, allocs/op, and custom metrics per entry);
# the raw `go test` lines still stream to the terminal via stderr.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH.json

# bench-compare re-runs the benchmarks into a scratch snapshot and prints
# the per-metric delta against the committed BENCH.json, flagging anything
# that regressed by more than 10%. The same delta is written as a markdown
# table to bench-delta.md (CI uploads it as an artifact). benchjson exits 3
# on a regression; the leading `-` keeps the report informational so
# noisy-machine variance never blocks a verify run — read the deltas, then
# decide.
bench-compare:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o /tmp/bench-new.json
	-$(GO) run ./cmd/benchjson -compare -threshold 10 -md bench-delta.md BENCH.json /tmp/bench-new.json

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools when the binary is on PATH and skips
# gracefully when it is not, so local builds without it still `make verify`.
# CI installs it explicitly and therefore always gets the real check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2023.1.7)"; \
	fi

# cover-tcpip gates line coverage of the internet-over-ATM packages: the
# profile is written to tcpip-cover.out (a CI artifact) and the combined
# total must clear 75%.
cover-tcpip:
	$(GO) test -coverprofile=tcpip-cover.out ./internal/ip ./internal/tcp
	@$(GO) tool cover -func=tcpip-cover.out | awk ' \
		/^total:/ { pct = $$3; sub(/%/, "", pct); \
			if (pct + 0 < 75) { printf "coverage %s%% is below the 75%% gate\n", pct; exit 1 } \
			printf "internal/ip + internal/tcp line coverage %s%% (gate 75%%)\n", pct }'

# trace-verify exports a flight-recorder trace from a short atmsim run and
# validates it against the Perfetto trace-event schema subset we emit.
trace-verify:
	$(GO) run ./cmd/atmsim -duration 2ms -size 9180 -trace /tmp/atmsim-trace.json >/dev/null
	$(GO) run ./cmd/traceverify /tmp/atmsim-trace.json

# verify is the pre-PR gate: formatting, vet, staticcheck (when installed),
# a full build, the test suite under the race detector, the trace schema
# gate, and a non-blocking benchmark delta against the committed BENCH.json.
verify: fmt-check vet staticcheck
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) trace-verify
	-$(MAKE) bench-compare
