GO ?= go

.PHONY: all build test bench verify fmt fmt-check vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs every benchmark and distills the results into BENCH.json
# (name, iterations, ns/op, B/op, allocs/op, and custom metrics per entry);
# the raw `go test` lines still stream to the terminal via stderr.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH.json

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# verify is the pre-PR gate: formatting, vet, a full build, and the test
# suite under the race detector.
verify: fmt-check vet
	$(GO) build ./...
	$(GO) test -race ./...
