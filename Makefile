GO ?= go

.PHONY: all build test bench verify fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -w .

# verify is the pre-PR gate: formatting, vet, a full build, and the test
# suite under the race detector.
verify:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
