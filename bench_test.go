// Package repro's root benchmarks regenerate every reconstructed table and
// figure (E1..E20; see DESIGN.md) under `go test -bench`. Each benchmark
// runs the corresponding experiment core and reports its headline numbers
// as custom metrics, so `go test -bench=. -benchmem | tee bench_output.txt`
// is the whole evaluation.
package repro

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/aal"
	"repro/internal/atm"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/sonetlink"
	"repro/internal/units"
)

// -shards mirrors atmbench's flag for the experiment benchmarks whose
// topologies the partitioner can cut (E16): `go test -bench=E16 . -shards=4`
// runs the tandem chain on a 4-way sharded kernel. Results are pinned
// bit-identical to serial by the golden tests, so this only moves time.
var benchShards = flag.Int("shards", 1, "intra-run partition count for shardable experiment benchmarks")

// BenchmarkE1TxSegmentation regenerates the transmit firmware budget table.
func BenchmarkE1TxSegmentation(b *testing.B) {
	var rows []experiments.E1Row
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.E1(engine.DefaultConfig())
	}
	for _, r := range rows {
		if r.AAL == aal.AAL5 && r.Routine == "tx_cell (mid)" {
			b.ReportMetric(r.Frac155, "midcell-x155")
			b.ReportMetric(r.Frac622, "midcell-x622")
		}
	}
}

// BenchmarkE2RxReassembly regenerates the receive firmware budget table.
func BenchmarkE2RxReassembly(b *testing.B) {
	var rows []experiments.E2Row
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.E2(engine.DefaultConfig())
	}
	for _, r := range rows {
		if r.AAL == aal.AAL5 && r.Lookup == "cam" && r.Buffers.String() == "paged" {
			b.ReportMetric(r.Frac155, "rxcell-x155")
			b.ReportMetric(r.Frac622, "rxcell-x622")
		}
	}
}

// BenchmarkE3Throughput regenerates the goodput-vs-size figure (reduced
// sweep per iteration; the full sweep is cmd/atmbench -exp e3).
func BenchmarkE3Throughput(b *testing.B) {
	ec := experiments.E3Config{
		Sizes:   []int{64, 9180, 65535},
		RunTime: 10 * sim.Millisecond,
		Window:  4,
	}
	var pts []experiments.E3Point
	for i := 0; i < b.N; i++ {
		pts, _, _ = experiments.E3(ec)
	}
	var got155, got622 bool
	for _, p := range pts {
		if p.Rate == units.STS3cPayload && p.AAL == aal.AAL5 && p.Size == 9180 {
			b.ReportMetric(p.GoodputBps/1e6, "mtu155-Mbps")
			got155 = p.GoodputBps > 0
		}
		if p.Rate == units.STS12cPayload && p.AAL == aal.AAL5 && p.Size == 9180 {
			b.ReportMetric(p.GoodputBps/1e6, "mtu622-Mbps")
			got622 = p.GoodputBps > 0
		}
	}
	// A zero MTU goodput is a broken measurement rig, not a result — the
	// 622 column silently reported 0 for several releases because the
	// receive FIFO overflowed and every frame failed its CRC.
	if !got155 || !got622 {
		b.Fatalf("MTU goodput measured as zero (155 ok=%v, 622 ok=%v)", got155, got622)
	}
}

// BenchmarkE4HostLoad regenerates the host-utilization figure.
func BenchmarkE4HostLoad(b *testing.B) {
	ec := experiments.E4Config{
		Loads:   []float64{0.25, 0.75},
		SDUSize: 9180,
		RunTime: 15 * sim.Millisecond,
	}
	var pts []experiments.E4Point
	for i := 0; i < b.N; i++ {
		pts, _, _ = experiments.E4(ec)
	}
	for _, p := range pts {
		if p.OfferedFrac == 0.75 {
			switch p.Arch {
			case experiments.ArchPerPacket:
				b.ReportMetric(p.HostUtil, "perpkt-util@75")
			case experiments.ArchPerCell:
				b.ReportMetric(p.HostUtil, "percell-util@75")
			}
		}
	}
}

// BenchmarkE5Latency regenerates the latency-breakdown table.
func BenchmarkE5Latency(b *testing.B) {
	var rows []experiments.E5Row
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.E5()
	}
	for _, r := range rows {
		if r.Size == 9180 {
			b.ReportMetric(float64(r.Measured)/1000, "mtu-latency-us")
		}
	}
}

// BenchmarkE6Lookup regenerates the VC-lookup figure.
func BenchmarkE6Lookup(b *testing.B) {
	var pts []experiments.E6Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E6(nil)
	}
	for _, p := range pts {
		if p.VCs == 256 {
			switch p.Strategy {
			case "cam":
				b.ReportMetric(p.AvgCycles, "cam-cyc@256")
			case "linear":
				b.ReportMetric(p.AvgCycles, "linear-cyc@256")
			}
		}
	}
}

// BenchmarkE7BufMgr regenerates the buffer-organization table.
func BenchmarkE7BufMgr(b *testing.B) {
	var rows []experiments.E7Row
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.E7()
	}
	for _, r := range rows {
		if r.FrameCells == 196 {
			switch r.Org.String() {
			case "contig":
				b.ReportMetric(float64(r.LocalBytes), "contig-B@196c")
			case "paged":
				b.ReportMetric(float64(r.LocalBytes), "paged-B@196c")
			}
		}
	}
}

// BenchmarkE8Loss regenerates the loss-sensitivity figure (reduced sweep).
func BenchmarkE8Loss(b *testing.B) {
	ec := experiments.E8Config{
		LossProbs: []float64{1e-4, 1e-2},
		Sizes:     []int{9180},
		RunTime:   15 * sim.Millisecond,
	}
	var pts []experiments.E8Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E8(ec)
	}
	for _, p := range pts {
		if p.LossProb == 1e-2 {
			b.ReportMetric(p.DeliveredFrac, "frac@1e-2")
		}
	}
}

// BenchmarkE9Fifo regenerates the FIFO-sizing figure (two depths).
func BenchmarkE9Fifo(b *testing.B) {
	var pts []experiments.E9Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E9([]int{16, 192}, 10*sim.Millisecond)
	}
	b.ReportMetric(float64(pts[0].FifoDrops), "drops@16")
	b.ReportMetric(float64(pts[1].FifoDrops), "drops@192")
}

// BenchmarkE10Headroom regenerates the engine-clock headroom figure.
func BenchmarkE10Headroom(b *testing.B) {
	var pts []experiments.E10Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E10(nil)
	}
	for _, p := range pts {
		if p.ClockMHz == 25 {
			b.ReportMetric(p.MaxMbps, "25MHz-maxMbps")
		}
	}
}

// BenchmarkE11EngineScaleOut regenerates the multi-engine OC-12 figure.
func BenchmarkE11EngineScaleOut(b *testing.B) {
	var pts []experiments.E11Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E11([]int{1, 3}, 10*sim.Millisecond)
	}
	b.ReportMetric(pts[0].GoodputBps/1e6, "1eng-Mbps")
	b.ReportMetric(pts[1].GoodputBps/1e6, "3eng-Mbps")
}

// BenchmarkE16MultiHop regenerates the tandem-switch CDV-accumulation
// figure: the 4-hop, 155 Mb/s point of the E16 sweep, built entirely
// through core.NewNetwork.
func BenchmarkE16MultiHop(b *testing.B) {
	prev := experiments.Shards()
	experiments.SetShards(*benchShards)
	defer experiments.SetShards(prev)
	var pts []experiments.E16Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E16(5 * sim.Millisecond)
	}
	for _, pt := range pts {
		if pt.Switches == 4 && pt.Rate == units.STS3cPayload {
			b.ReportMetric(float64(pt.E2ECDV)/1000, "4hop-cdv-us")
			b.ReportMetric(float64(pt.E2EMean)/1000, "4hop-mean-us")
		}
	}
}

// BenchmarkE17FaultRecovery regenerates the link-failure experiment: a
// mid-path fiber cut and repair under load, reporting the fault-detection
// and post-repair recovery latencies.
func BenchmarkE17FaultRecovery(b *testing.B) {
	var res experiments.E17Result
	for i := 0; i < b.N; i++ {
		res, _ = experiments.E17(10 * sim.Millisecond)
	}
	b.ReportMetric(float64(res.DetectLatency)/1000, "detect-us")
	b.ReportMetric(float64(res.RecoveryLatency)/1000, "recover-us")
	b.ReportMetric(float64(res.StaleFramesReclaimed), "stale-frames")
}

// BenchmarkE18StageBreakdown regenerates the per-stage latency attribution
// of the E5 MTU journey from flight-recorder spans, and asserts the stage
// sums reconcile with the measured end-to-end latency within 5%.
func BenchmarkE18StageBreakdown(b *testing.B) {
	var rows []experiments.E18Row
	for i := 0; i < b.N; i++ {
		rows, _, _ = experiments.E18()
	}
	for _, r := range rows {
		switch r.Rate {
		case units.STS3cPayload:
			b.ReportMetric(float64(r.Sum)/1000, "155-sum-us")
			b.ReportMetric(float64(r.SARFifo)/1000, "155-sarfifo-us")
		case units.STS12cPayload:
			b.ReportMetric(float64(r.Sum)/1000, "622-sum-us")
			b.ReportMetric(float64(r.RxFifo)/1000, "622-rxfifo-us")
		}
		ratio := float64(r.Sum) / float64(r.Measured)
		if ratio < 0.95 || ratio > 1.05 {
			b.Fatalf("rate %d: stage sum %v vs measured %v (ratio %.3f, want within 5%%)",
				r.Rate, r.Sum, r.Measured, ratio)
		}
	}
}

// BenchmarkAblationInterleave measures the short-frame latency win of
// multi-VC interleaved segmentation (DESIGN.md's TX scheduler choice): a
// 96-byte frame queued behind a 64 KiB bulk frame, serial vs interleaved.
func BenchmarkAblationInterleave(b *testing.B) {
	measure := func(interleave bool) float64 {
		tb, err := core.NewTestbed(core.Options{InterleaveVCs: interleave}, core.LinkOptions{})
		if err != nil {
			b.Fatal(err)
		}
		bulk, small := core.VC{VCI: 1}, core.VC{VCI: 2}
		tb.OpenVC(bulk)
		tb.OpenVC(small)
		var at sim.Time
		tb.B.OnReceive(func(p core.Packet) {
			if p.VC == small {
				at = p.At
			}
		})
		tb.A.Send(bulk, make([]byte, 65535), nil)
		tb.A.Send(small, make([]byte, 96), nil)
		tb.Run()
		return float64(at) / 1000
	}
	var serial, inter float64
	for i := 0; i < b.N; i++ {
		serial = measure(false)
		inter = measure(true)
	}
	b.ReportMetric(serial, "serial-us")
	b.ReportMetric(inter, "interleaved-us")
}

// BenchmarkAblationSonetPath compares the cell-granular link shortcut with
// the full SONET-framed path (framing, scrambling, delineation) — the
// fidelity/speed trade DESIGN.md documents.
func BenchmarkAblationSonetPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		mk := func(name string) *nic.Interface {
			cfg := nic.DefaultConfig(name)
			cfg.RxFifoDepth = 128
			iface, err := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
			if err != nil {
				b.Fatal(err)
			}
			return iface
		}
		a, bb := mk("a"), mk("b")
		if _, err := sonetlink.Connect(k, sonetlink.Config{Rate: sonet.STS3c, Delay: 10_000}, a, bb); err != nil {
			b.Fatal(err)
		}
		vc := atm.VC{VCI: 9}
		a.OpenVC(vc)
		bb.OpenVC(vc)
		delivered := 0
		bb.OnReceive(func(nic.Delivered) { delivered++ })
		for j := 0; j < 5; j++ {
			a.Send(vc, make([]byte, 9180), nil)
		}
		k.Run()
		if delivered != 5 {
			b.Fatalf("delivered %d of 5 over SONET path", delivered)
		}
	}
}

// BenchmarkBurstSonetPath compares the SONET receive recovery paths: serial
// (one deferred kernel event per recovered cell) against burst (each frame's
// cells crossing as one vector, re-spread at the destination's door). The
// golden tests pin the two cell-for-cell identical; this measures what the
// batching buys in wall clock and allocations, and reports kernel events per
// op honestly — the receive door is a must-split stage, so bursts shrink
// bookkeeping, not the event count.
func BenchmarkBurstSonetPath(b *testing.B) {
	run := func(b *testing.B, burst bool) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			k := sim.NewKernel()
			mk := func(name string) *nic.Interface {
				cfg := nic.DefaultConfig(name)
				cfg.RxFifoDepth = 128
				iface, err := nic.New(k, cfg, host.New(k, host.DefaultConfig()), bus.New(k, bus.DefaultConfig()))
				if err != nil {
					b.Fatal(err)
				}
				return iface
			}
			a, bb := mk("a"), mk("b")
			if _, err := sonetlink.Connect(k, sonetlink.Config{
				Rate: sonet.STS3c, Delay: 10_000, Burst: burst,
			}, a, bb); err != nil {
				b.Fatal(err)
			}
			vc := atm.VC{VCI: 9}
			a.OpenVC(vc)
			bb.OpenVC(vc)
			delivered := 0
			bb.OnReceive(func(nic.Delivered) { delivered++ })
			for j := 0; j < 5; j++ {
				a.Send(vc, make([]byte, 9180), nil)
			}
			k.Run()
			if delivered != 5 {
				b.Fatalf("delivered %d of 5 over SONET path", delivered)
			}
			events = k.Dispatched()
		}
		b.ReportMetric(float64(events), "events/op")
	}
	b.Run("serial", func(b *testing.B) { run(b, false) })
	b.Run("burst", func(b *testing.B) { run(b, true) })
}

// BenchmarkShardedTopology measures what partitioned conservative-parallel
// execution buys on a topology built for it: four switch islands (one switch
// + two endpoints each) joined in a chain by 50 µs inter-island fibers — the
// lookahead window — with heavy intra-island traffic and a light paced flow
// crossing each boundary. The golden tests pin sharded runs byte-identical
// to serial; this records the wall-clock trajectory (1/2/4 shards) in
// BENCH.json. The speedup needs real cores: with GOMAXPROCS below the shard
// count the partitions timeshare one CPU and only the barrier overhead shows.
func BenchmarkShardedTopology(b *testing.B) {
	const (
		islands  = 4
		deadline = sim.Time(10 * sim.Millisecond)
		interDly = 50_000 // ns; the partitions' lookahead
	)
	mkSpec := func() core.NetworkSpec {
		var spec core.NetworkSpec
		for i := 1; i <= islands; i++ {
			spec.Switches = append(spec.Switches, core.SwitchSpec{
				Name: fmt.Sprintf("sw%d", i), Ports: 4, QueueDepth: 96,
			})
			spec.Endpoints = append(spec.Endpoints,
				core.EndpointSpec{Name: fmt.Sprintf("a%d", i)},
				core.EndpointSpec{Name: fmt.Sprintf("b%d", i)})
			spec.Links = append(spec.Links,
				core.LinkSpec{
					Name: fmt.Sprintf("a%d-in", i), A: core.NodeRef{Node: fmt.Sprintf("a%d", i)},
					B:     core.NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 0},
					Delay: 1_000, Seed: uint64(10 + i),
				},
				core.LinkSpec{
					Name: fmt.Sprintf("b%d-in", i), A: core.NodeRef{Node: fmt.Sprintf("b%d", i)},
					B:     core.NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 1},
					Delay: 1_000, Seed: uint64(20 + i),
				})
			if i > 1 {
				spec.Links = append(spec.Links, core.LinkSpec{
					Name:  fmt.Sprintf("sw%d-sw%d", i-1, i),
					A:     core.NodeRef{Node: fmt.Sprintf("sw%d", i-1), Port: 2},
					B:     core.NodeRef{Node: fmt.Sprintf("sw%d", i), Port: 3},
					Delay: interDly, Seed: uint64(30 + i),
				})
			}
			// Heavy intra-island load both ways, plus one light flow into the
			// next island (paced below 5% of line so the boundary stays cheap).
			spec.VCCs = append(spec.VCCs,
				core.VCCSpec{Name: fmt.Sprintf("ab%d", i), From: fmt.Sprintf("a%d", i),
					To: fmt.Sprintf("b%d", i), VC: core.VC{VCI: uint16(100 + i)}},
				core.VCCSpec{Name: fmt.Sprintf("ba%d", i), From: fmt.Sprintf("b%d", i),
					To: fmt.Sprintf("a%d", i), VC: core.VC{VCI: uint16(120 + i)}})
			if i > 1 {
				spec.VCCs = append(spec.VCCs, core.VCCSpec{
					Name: fmt.Sprintf("x%d", i), From: fmt.Sprintf("a%d", i-1),
					To: fmt.Sprintf("b%d", i), VC: core.VC{VCI: uint16(140 + i)}})
			}
		}
		return spec
	}
	partitions := func(shards int) [][]string {
		parts := make([][]string, shards)
		per := islands / shards
		for i := 1; i <= islands; i++ {
			s := (i - 1) / per
			parts[s] = append(parts[s],
				fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("sw%d", i))
		}
		return parts
	}
	run := func(b *testing.B, shards int) uint64 {
		var delivered uint64
		for n := 0; n < b.N; n++ {
			spec := mkSpec()
			if shards > 1 {
				spec.Partitions = partitions(shards)
			}
			net, err := core.NewNetwork(spec)
			if err != nil {
				b.Fatal(err)
			}
			counts := make([]int, 2*islands)
			for i := 1; i <= islands; i++ {
				slotA, slotB := &counts[2*(i-1)], &counts[2*(i-1)+1]
				net.Endpoint(fmt.Sprintf("a%d", i)).OnReceive(func(core.Packet) { *slotA++ })
				net.Endpoint(fmt.Sprintf("b%d", i)).OnReceive(func(core.Packet) { *slotB++ })
			}
			for i := 1; i <= islands; i++ {
				for _, name := range []string{fmt.Sprintf("ab%d", i), fmt.Sprintf("ba%d", i)} {
					v := net.VCC(name)
					netsim.NewSource(net.NodeKernel(v.Source.Name()), v.Source.Station(),
						v.SourceVC, 9180, deadline).Start(4)
				}
				if i > 1 {
					v := net.VCC(fmt.Sprintf("x%d", i))
					if err := v.Source.SetPeakCellRate(v.SourceVC, 0.05*units.CellRate(units.STS3cPayload)); err != nil {
						b.Fatal(err)
					}
					netsim.NewSource(net.NodeKernel(v.Source.Name()), v.Source.Station(),
						v.SourceVC, 9180, deadline).Start(2)
				}
			}
			net.Run()
			net.Close()
			delivered = 0
			for _, c := range counts {
				delivered += uint64(c)
			}
			if delivered == 0 {
				b.Fatal("no SDUs delivered")
			}
		}
		b.ReportMetric(float64(delivered), "sdus/op")
		return delivered
	}
	var serialCount uint64
	b.Run("shards=1", func(b *testing.B) { serialCount = run(b, 1) })
	for _, shards := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			if got := run(b, shards); serialCount != 0 && got != serialCount {
				b.Fatalf("delivered %d SDUs, serial %d", got, serialCount)
			}
		})
	}
}

// BenchmarkE12Transport regenerates the transport-over-loss figure.
func BenchmarkE12Transport(b *testing.B) {
	var pts []experiments.E12Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E12([]float64{0, 2e-3}, 1<<19)
	}
	for _, p := range pts {
		switch {
		case !p.Selective && p.LossProb == 0:
			b.ReportMetric(p.GoodputBps/1e6, "gbn-clean-Mbps")
		case !p.Selective:
			b.ReportMetric(p.GoodputBps/1e6, "gbn-lossy-Mbps")
		case p.Selective && p.LossProb != 0:
			b.ReportMetric(p.GoodputBps/1e6, "sr-lossy-Mbps")
		}
	}
}

// BenchmarkE13FEC regenerates the packet-level FEC figure.
func BenchmarkE13FEC(b *testing.B) {
	var pts []experiments.E13Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E13([]float64{1e-3}, 9180, 8, 20*sim.Millisecond)
	}
	b.ReportMetric(pts[0].DeliveredFrac, "plain-frac")
	b.ReportMetric(pts[1].DeliveredFrac, "fec-frac")
}

// BenchmarkE14Policing regenerates the shaped-vs-unshaped policing table.
func BenchmarkE14Policing(b *testing.B) {
	var res [2]experiments.E14Result
	for i := 0; i < b.N; i++ {
		res, _ = experiments.E14(20 * sim.Millisecond)
	}
	b.ReportMetric(float64(res[0].Discarded), "unshaped-discards")
	b.ReportMetric(float64(res[1].Tagged+res[1].Discarded), "shaped-nonconform")
	b.ReportMetric(res[1].GoodputBps/1e6, "shaped-Mbps")
}

// BenchmarkE15EPD regenerates the tail-drop vs EPD/PPD goodput figure.
func BenchmarkE15EPD(b *testing.B) {
	var pts []experiments.E15Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E15([]float64{1.3}, 15*sim.Millisecond)
	}
	b.ReportMetric(pts[0].Efficiency, "tail-eff")
	b.ReportMetric(pts[1].Efficiency, "epd-eff")
}

// BenchmarkE19TCPBuffer regenerates the TCP-goodput-vs-switch-buffer figure
// at its extreme points: tail drop collapses below 1xBDP, EPD/PPD recovers.
func BenchmarkE19TCPBuffer(b *testing.B) {
	var pts []experiments.E19Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E19([]float64{0.25, 2.0}, 1500*sim.Millisecond)
	}
	for _, p := range pts {
		name := "tail"
		if p.EPD {
			name = "epd"
		}
		b.ReportMetric(p.Efficiency, fmt.Sprintf("%s-%.2fbdp-eff", name, p.BufferFrac))
	}
}

// BenchmarkE20GEO regenerates the GEO-delay TCP run: window-limited goodput
// over a 275 ms hop with a clean, stable cwnd trace.
func BenchmarkE20GEO(b *testing.B) {
	var res experiments.E20Result
	for i := 0; i < b.N; i++ {
		res, _ = experiments.E20(2, 6*sim.Second)
	}
	b.ReportMetric(res.Flows[0].GoodputBps/1e6, "flow0-Mbps")
	b.ReportMetric(res.JainIndex, "jain")
	b.ReportMetric(res.WindowLimitBps/1e6, "winlimit-Mbps")
}

// BenchmarkE21ABRConvergence regenerates the ABR closed-loop figure at its
// middle feedback delay: convergence time, Jain fairness over the settled
// tail, and the bottleneck queue excursion.
func BenchmarkE21ABRConvergence(b *testing.B) {
	var pts []experiments.E21Point
	for i := 0; i < b.N; i++ {
		pts, _ = experiments.E21(30 * sim.Millisecond)
	}
	mid := pts[1] // 50 µs one-way delay
	conv := float64(-1)
	if mid.Converged {
		conv = float64(mid.Convergence) / 1e6
	}
	b.ReportMetric(conv, "conv-ms")
	b.ReportMetric(mid.Jain, "jain")
	b.ReportMetric(float64(mid.QueuePeak), "qpeak-cells")
}
